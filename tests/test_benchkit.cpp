// Tests for the benchmark harness plumbing: the IMB driver's iteration
// policy, the Netpipe driver, and the bench utility flag parser.
#include <gtest/gtest.h>

#include "bench/bench_util.hpp"
#include "benchkit/imb.hpp"
#include "benchkit/netpipe.hpp"
#include "benchkit/osu.hpp"

namespace han {
namespace {

TEST(ImbPolicy, LargeMessagesGetFewerIterations) {
  auto stack = vendor::make_stack("ompi", machine::make_aries(2, 2));
  benchkit::ImbOptions opt;
  opt.sizes = {1 << 10, 8 << 20};
  opt.iterations = 3;
  opt.iterations_large = 1;
  opt.large_threshold = 4 << 20;
  auto pts = benchkit::imb_bcast(*stack, opt);
  EXPECT_EQ(pts[0].iterations, 3);
  EXPECT_EQ(pts[1].iterations, 1);
}

TEST(ImbPolicy, WarmupExcludedFromStats) {
  // With 1 warmup + 1 iteration, min == avg == max (single sample).
  auto stack = vendor::make_stack("han", machine::make_aries(2, 2));
  benchkit::ImbOptions opt;
  opt.sizes = {64 << 10};
  opt.warmup = 1;
  opt.iterations = 1;
  auto pts = benchkit::imb_allreduce(*stack, opt);
  EXPECT_DOUBLE_EQ(pts[0].min_sec, pts[0].avg_sec);
  EXPECT_DOUBLE_EQ(pts[0].avg_sec, pts[0].max_sec);
  EXPECT_GT(pts[0].avg_sec, 0.0);
}

TEST(ImbPolicy, NonRootZeroRootSupported) {
  auto stack = vendor::make_stack("han", machine::make_aries(2, 3));
  benchkit::ImbOptions opt;
  opt.sizes = {4 << 10};
  opt.root = 4;  // non-leader root on node 1
  auto pts = benchkit::imb_bcast(*stack, opt);
  EXPECT_GT(pts[0].avg_sec, 0.0);
}

TEST(NetpipeDriver, LatencyAndBandwidthMonotonicity) {
  mpi::SimWorld w(machine::make_aries(2, 2));
  benchkit::NetpipeOptions opt;
  opt.sizes = {8, 8 << 10, 8 << 20};
  auto pts = benchkit::netpipe(w, opt);
  ASSERT_EQ(pts.size(), 3u);
  // One-way time grows with size; bandwidth grows toward the peak.
  EXPECT_LT(pts[0].one_way_sec, pts[1].one_way_sec);
  EXPECT_LT(pts[1].one_way_sec, pts[2].one_way_sec);
  EXPECT_LT(pts[0].bandwidth_gbps, pts[2].bandwidth_gbps);
  // 8MB approaches the NIC's peak efficiency.
  EXPECT_GT(pts[2].bandwidth_gbps, 7.0);
  EXPECT_LT(pts[2].bandwidth_gbps, 10.0);
}

TEST(NetpipeDriver, ExplicitPeers) {
  mpi::SimWorld w(machine::make_aries(3, 2));
  benchkit::NetpipeOptions opt;
  opt.sizes = {1 << 10};
  opt.rank_a = 1;
  opt.rank_b = 4;  // node 2
  auto pts = benchkit::netpipe(w, opt);
  EXPECT_GT(pts[0].one_way_sec, w.profile().net_latency);
}


TEST(OsuDrivers, LatencyMatchesNetpipeScale) {
  mpi::SimWorld w(machine::make_aries(2, 2));
  benchkit::OsuOptions opt;
  opt.sizes = {8, 64 << 10};
  auto lat = benchkit::osu_latency(w, opt);
  ASSERT_EQ(lat.size(), 2u);
  EXPECT_GT(lat[0].latency_sec, w.profile().net_latency);
  EXPECT_GT(lat[1].latency_sec, lat[0].latency_sec);
}

TEST(OsuDrivers, WindowedBwExceedsPingPongBw) {
  // osu_bw keeps a window in flight, hiding per-message stalls: its
  // mid-size bandwidth must beat the ping-pong (netpipe) figure — the
  // very effect HAN's pipelining exploits.
  mpi::SimWorld w1(machine::make_aries(2, 2));
  benchkit::OsuOptions opt;
  opt.sizes = {128 << 10};
  auto bw = benchkit::osu_bw(w1, opt);

  mpi::SimWorld w2(machine::make_aries(2, 2));
  benchkit::NetpipeOptions nopt;
  nopt.sizes = {128 << 10};
  auto pp = benchkit::netpipe(w2, nopt);

  EXPECT_GT(bw[0].bandwidth_gbps, pp[0].bandwidth_gbps * 1.3);
  EXPECT_LT(bw[0].bandwidth_gbps, 10.0);  // never above the NIC
}

TEST(OsuDrivers, MultiPairSharesTheNic) {
  mpi::SimWorld w(machine::make_aries(2, 4));
  benchkit::OsuOptions opt;
  opt.sizes = {256 << 10};
  opt.pairs = 4;
  auto mbw = benchkit::osu_mbw_mr(w, opt);
  ASSERT_EQ(mbw.size(), 1u);
  EXPECT_EQ(mbw[0].pairs, 4);
  // Aggregate stays within the single NIC's capacity.
  EXPECT_LE(mbw[0].aggregate_gbps, 10.0 * 1.01);
  EXPECT_GT(mbw[0].aggregate_gbps, 5.0);
  EXPECT_GT(mbw[0].messages_per_sec, 0.0);
}

TEST(BenchArgs, FlagParsing) {
  const char* argv[] = {"prog",    "--full", "--nodes", "24",
                        "--bytes", "4M",     "--name",  "opath"};
  bench::Args args(8, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("--full"));
  EXPECT_FALSE(args.has("--quick"));
  EXPECT_EQ(args.get_long("--nodes", 1), 24);
  EXPECT_EQ(args.get_long("--missing", 7), 7);
  EXPECT_EQ(args.get_bytes("--bytes", 0), 4u << 20);
  EXPECT_EQ(args.get_bytes("--nope", 42), 42u);
  EXPECT_EQ(args.get_string("--name", "x"), "opath");
  EXPECT_EQ(args.get_string("--other", "dflt"), "dflt");
}

TEST(BenchArgs, ScaleSelection) {
  {
    const char* argv[] = {"prog"};
    bench::Args args(1, const_cast<char**>(argv));
    const bench::Scale s = bench::pick_scale(args, {8, 4}, {64, 32});
    EXPECT_EQ(s.nodes, 8);
    EXPECT_EQ(s.ppn, 4);
  }
  {
    const char* argv[] = {"prog", "--full", "--ppn", "16"};
    bench::Args args(4, const_cast<char**>(argv));
    const bench::Scale s = bench::pick_scale(args, {8, 4}, {64, 32});
    EXPECT_EQ(s.nodes, 64);
    EXPECT_EQ(s.ppn, 16);  // explicit override beats preset
  }
}

TEST(BenchUtil, Ladder4AndSpeedup) {
  EXPECT_EQ(bench::ladder4(4, 256),
            (std::vector<std::size_t>{4, 16, 64, 256}));
  EXPECT_EQ(bench::ladder4(5, 4), std::vector<std::size_t>{});
  EXPECT_DOUBLE_EQ(bench::speedup(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(bench::speedup(10.0, 0.0), 0.0);
}

}  // namespace
}  // namespace han

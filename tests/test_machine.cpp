// Unit tests for machine profiles, efficiency curves, and fabric wiring.
#include <gtest/gtest.h>

#include "machine/effcurve.hpp"
#include "machine/fabric.hpp"
#include "machine/machine.hpp"
#include "simbase/engine.hpp"

namespace han::machine {
namespace {

TEST(EffCurve, EmptyCurveIsUnity) {
  EffCurve c;
  EXPECT_DOUBLE_EQ(c.at(1), 1.0);
  EXPECT_DOUBLE_EQ(c.at(1 << 20), 1.0);
}

TEST(EffCurve, ClampsOutsideKnots) {
  EffCurve c({{100, 0.5}, {1000, 1.0}});
  EXPECT_DOUBLE_EQ(c.at(1), 0.5);
  EXPECT_DOUBLE_EQ(c.at(100), 0.5);
  EXPECT_DOUBLE_EQ(c.at(1000), 1.0);
  EXPECT_DOUBLE_EQ(c.at(100000), 1.0);
}

TEST(EffCurve, InterpolatesInLogSpace) {
  EffCurve c({{16, 0.4}, {64, 0.8}});
  // 32 is the log-midpoint of 16 and 64.
  EXPECT_NEAR(c.at(32), 0.6, 1e-12);
}

TEST(EffCurve, MonotoneBetweenMonotoneKnots) {
  EffCurve c = ompi_net_efficiency();
  // The Open MPI curve dips: 16KB-128KB efficiencies are below both the
  // eager region and the peak (Fig. 11 shape).
  EXPECT_LT(c.at(64 << 10), c.at(4 << 10));
  EXPECT_LT(c.at(64 << 10), c.at(8 << 20));
  EXPECT_GT(c.at(8 << 20), 0.9);
}

TEST(EffCurve, VendorCurveDominatesOmpiMidRange) {
  EffCurve ompi = ompi_net_efficiency();
  EffCurve vendor = vendor_net_efficiency();
  for (std::uint64_t b = 16 << 10; b <= 512 << 10; b *= 2) {
    EXPECT_GT(vendor.at(b), ompi.at(b)) << "at " << b;
  }
  // Equal-ish peaks: the paper notes both reach the same peak bandwidth.
  EXPECT_NEAR(vendor.at(64 << 20), ompi.at(64 << 20), 0.01);
}

TEST(MachineProfile, AriesDefaults) {
  const MachineProfile m = make_aries();
  EXPECT_EQ(m.nodes, 128);
  EXPECT_EQ(m.procs_per_node, 32);
  EXPECT_EQ(m.total_procs(), 4096);
  EXPECT_GT(m.nic_bandwidth, 0.0);
  EXPECT_GT(m.membus_bandwidth, m.nic_bandwidth);
  EXPECT_GT(m.reduce_bandwidth_avx, m.reduce_bandwidth_scalar);
}

TEST(MachineProfile, OpathDefaults) {
  const MachineProfile m = make_opath();
  EXPECT_EQ(m.total_procs(), 1536);
  EXPECT_LT(m.net_latency, make_aries().net_latency);
}

TEST(MachineProfile, ScalableShape) {
  const MachineProfile m = make_aries(4, 8);
  EXPECT_EQ(m.total_procs(), 32);
}

TEST(ClusterFabric, WiresResourcesPerNode) {
  sim::Engine e;
  net::FlowNet fn(e);
  const MachineProfile m = make_aries(4, 8);
  ClusterFabric fabric(fn, m);

  EXPECT_DOUBLE_EQ(fn.capacity(fabric.nic_tx(0)), m.nic_bandwidth);
  EXPECT_DOUBLE_EQ(fn.capacity(fabric.nic_rx(3)), m.nic_bandwidth);
  EXPECT_DOUBLE_EQ(fn.capacity(fabric.membus(1)), m.membus_bandwidth);
  EXPECT_DOUBLE_EQ(fn.capacity(fabric.fabric()),
                   m.bisection_factor * 4 * m.nic_bandwidth);
}

TEST(ClusterFabric, InterPathCrossesBothBuses) {
  sim::Engine e;
  net::FlowNet fn(e);
  const MachineProfile m = make_aries(4, 8);
  ClusterFabric fabric(fn, m);

  std::vector<net::ResourceId> path;
  fabric.inter_path(0, 2, path);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path[0], fabric.nic_tx(0));
  EXPECT_EQ(path[1], fabric.fabric());
  EXPECT_EQ(path[2], fabric.nic_rx(2));
  EXPECT_EQ(path[3], fabric.membus(0));
  EXPECT_EQ(path[4], fabric.membus(2));

  fabric.intra_path(1, 0, path);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], fabric.membus(1));
}

}  // namespace
}  // namespace han::machine

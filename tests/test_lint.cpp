// han::lint tests: determinism of the guideline sweep (--jobs 1 vs 8
// byte-identical), a golden-pinned diagnostic JSON, the clean smoke
// sweep at zero errors, the full seeded-mutation corpus (every defect
// caught with its expected diagnostic class), the audit mode, the
// perturbation scenarios, and a death test on the assert-backed gates —
// mirroring the test_verify.cpp corpus style.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "autotune/lookup.hpp"
#include "autotune/tunedb.hpp"
#include "han/lint/lint.hpp"
#include "machine/machine.hpp"
#include "simmpi/world.hpp"

namespace han::lint {
namespace {

/// All findings of one diagnostic class across the result.
int count_diag(const LintResult& r, Diag d) {
  int n = 0;
  for (const LintEntry& e : r.entries) {
    for (const Finding& f : e.findings) n += f.code == d;
  }
  return n;
}

machine::MachineProfile stock_profile(const std::string& name) {
  for (const machine::StockMachine& sm : machine::stock_machines()) {
    if (name == sm.name) return sm.profile;
  }
  ADD_FAILURE() << "unknown stock machine " << name;
  return machine::make_aries(2, 8);
}

const Finding* find_diag(const LintResult& r, Diag d) {
  for (const LintEntry& e : r.entries) {
    for (const Finding& f : e.findings) {
      if (f.code == d) return &f;
    }
  }
  return nullptr;
}

// ---- guideline table ---------------------------------------------------

TEST(LintTable, GuidelinesAreWellFormed) {
  const std::vector<Guideline>& table = guideline_table();
  ASSERT_GE(table.size(), 10u);
  for (const Guideline& g : table) {
    EXPECT_NE(g.id, nullptr);
    EXPECT_NE(g.expr, nullptr);
    EXPECT_GE(g.tolerance, 0.0);
    EXPECT_EQ(&guideline(g.id), &g);  // lookup round-trips
  }
  // The cross-kind rules of the issue are present, with their classes.
  EXPECT_EQ(guideline("xk.allreduce_le_red_bc").diag,
            Diag::CrossKindViolation);
  EXPECT_EQ(guideline("xk.scatter_le_bcast").diag, Diag::CrossKindViolation);
  EXPECT_EQ(guideline("stripe.no_regression").diag,
            Diag::StripingRegression);
  EXPECT_EQ(guideline("perturb.regret").diag, Diag::PerturbationRegret);
}

TEST(LintTable, DiagNamesAreStable) {
  EXPECT_STREQ(diag_name(Diag::CrossKindViolation), "cross-kind-violation");
  EXPECT_STREQ(diag_name(Diag::ZcsDiscontinuity), "zcs-discontinuity");
  EXPECT_STREQ(diag_name(Diag::StripingRegression), "striping-regression");
  EXPECT_STREQ(diag_name(Diag::PerturbationRegret), "perturbation-regret");
}

// ---- report format -----------------------------------------------------

/// The JSON shape is golden-pinned on a hand-constructed result so format
/// drift (key order, float formatting, escaping) fails loudly.
TEST(LintReport, GoldenJson) {
  LintResult r;
  LintEntry e;
  e.name = "model.test.bcast";
  e.checks = 3;
  e.errors = 1;
  Finding f;
  f.guideline = "mono.size.model";
  f.code = Diag::SizeMonotonicity;
  f.severity = Severity::Error;
  f.witness_a = "fs=64KB @ 1048576B";
  f.witness_b = "fs=64KB @ 65536B";
  f.lhs = 0.001;
  f.rhs = 0.0025;
  f.margin = 0.6;
  f.message = "cost drops with \"size\"";
  e.findings.push_back(f);
  r.entries.push_back(e);

  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"totals\": {\"cases\": 1, \"checks\": 3, "
                   "\"errors\": 1, \"warnings\": 0}"),
            std::string::npos)
      << j;
  EXPECT_NE(
      j.find("\"model.test.bcast\": {\"checks\": 3, \"errors\": 1, "
             "\"warnings\": 0, \"findings\": [{\"guideline\": "
             "\"mono.size.model\", \"diag\": \"size-monotonicity\", "
             "\"severity\": \"error\", \"witness\": [\"fs=64KB @ "
             "1048576B\", \"fs=64KB @ 65536B\"], \"lhs\": 0.001, \"rhs\": "
             "0.0025, \"margin\": 0.6, \"message\": \"cost drops with "
             "\\\"size\\\"\"}]}"),
      std::string::npos)
      << j;
  // The guideline table itself is embedded for report consumers.
  EXPECT_NE(j.find("\"id\": \"perturb.regret\""), std::string::npos);
}

// ---- clean sweep + determinism -----------------------------------------

TEST(LintSweep, CleanSmokeHasZeroErrors) {
  LintOptions opts = LintOptions::smoke();
  opts.jobs = 8;
  const LintResult r = run_lint(opts);
  EXPECT_GT(r.total_checks(), 100);
  EXPECT_EQ(r.total_errors(), 0) << r.summary();
  // Entries arrive sorted by name (the determinism contract).
  for (std::size_t i = 1; i < r.entries.size(); ++i) {
    EXPECT_LT(r.entries[i - 1].name, r.entries[i].name);
  }
  // All three case families ran on both smoke machines.
  const auto has = [&](const std::string& name) {
    return std::any_of(r.entries.begin(), r.entries.end(),
                       [&](const LintEntry& e) { return e.name == name; });
  };
  EXPECT_TRUE(has("model.aries2x8.bcast"));
  EXPECT_TRUE(has("model.aries2x8.bcast.zcs"));
  EXPECT_TRUE(has("model.aries_rail4.bcast.stripe"));
  EXPECT_TRUE(has("sim.aries2x8"));
  EXPECT_TRUE(has("sim.aries2x8.ppn"));
  EXPECT_TRUE(has("perturb.aries2x8.bcast.degraded_link"));
}

TEST(LintSweep, JobsAreByteIdentical) {
  LintOptions opts = LintOptions::smoke();
  opts.machines = {"aries2x8"};  // one machine keeps the test tight
  opts.jobs = 1;
  const std::string serial = run_lint(opts).to_json();
  opts.jobs = 8;
  const std::string parallel = run_lint(opts).to_json();
  EXPECT_EQ(serial, parallel);
}

// ---- perturbation scenarios --------------------------------------------

TEST(LintPerturb, ScenariosDerateCapacities) {
  for (const char* scenario : scenario_names()) {
    mpi::SimWorld clean(stock_profile("aries_rail4"));
    mpi::SimWorld dirty(stock_profile("aries_rail4"));
    apply_scenario(dirty, scenario);
    ASSERT_EQ(clean.flownet().resource_count(),
              dirty.flownet().resource_count());
    int derated = 0;
    for (net::ResourceId id = 0;
         id < static_cast<net::ResourceId>(clean.flownet().resource_count());
         ++id) {
      const double before = clean.flownet().capacity(id);
      const double after = dirty.flownet().capacity(id);
      EXPECT_LE(after, before) << scenario;  // never speeds anything up
      derated += after < before;
    }
    EXPECT_GT(derated, 0) << scenario;
  }
}

TEST(LintPerturb, ScenariosAreDeterministic) {
  mpi::SimWorld a(stock_profile("aries2x8"));
  mpi::SimWorld b(stock_profile("aries2x8"));
  apply_scenario(a, "noisy_bw");
  apply_scenario(b, "noisy_bw");
  for (net::ResourceId id = 0;
       id < static_cast<net::ResourceId>(a.flownet().resource_count());
       ++id) {
    EXPECT_EQ(a.flownet().capacity(id), b.flownet().capacity(id));
  }
}

// ---- mutation corpus ---------------------------------------------------

/// The family that can catch a diagnostic class (keeps each corpus run
/// small: one machine, only the relevant sweep family).
LintOptions options_for(Diag expected) {
  LintOptions opts = LintOptions::smoke();
  opts.model = false;
  opts.sim = false;
  opts.perturb = false;
  switch (expected) {
    case Diag::CrossKindViolation:
    case Diag::PpnMonotonicity:
      opts.machines = {"aries2x8"};
      opts.sim = true;
      break;
    case Diag::SizeMonotonicity:
      opts.machines = {"aries2x8"};
      opts.model = true;
      opts.sim = true;
      break;
    case Diag::ZcsDiscontinuity:
      opts.machines = {"aries2x8"};
      opts.model = true;
      break;
    case Diag::StripingRegression:
      opts.machines = {"aries_rail4"};
      opts.model = true;
      break;
    case Diag::PerturbationRegret:
      opts.machines = {"aries2x8"};
      opts.perturb = true;
      break;
    default:
      ADD_FAILURE() << "corpus diag with no sweep family";
  }
  return opts;
}

TEST(LintMutations, CorpusCoversTheRequiredClasses) {
  ASSERT_GE(mutation_corpus().size(), 15u);
  int xk = 0, mono = 0, zcs = 0, stripe = 0, regret = 0;
  for (const Mutation& m : mutation_corpus()) {
    xk += m.expected == Diag::CrossKindViolation;
    mono += m.expected == Diag::SizeMonotonicity ||
            m.expected == Diag::PpnMonotonicity;
    zcs += m.expected == Diag::ZcsDiscontinuity;
    stripe += m.expected == Diag::StripingRegression;
    regret += m.expected == Diag::PerturbationRegret;
    EXPECT_EQ(find_mutation(m.name), &m);
  }
  EXPECT_GE(xk, 3);
  EXPECT_GE(mono, 3);
  EXPECT_GE(zcs, 3);
  EXPECT_GE(stripe, 3);
  EXPECT_GE(regret, 3);
  EXPECT_EQ(find_mutation("no_such_defect"), nullptr);
}

/// The acceptance criterion: every seeded cost-model defect is detected,
/// with its expected diagnostic class, as an Error (the gate trips).
TEST(LintMutations, EverySeededDefectIsCaughtWithItsClass) {
  for (const Mutation& m : mutation_corpus()) {
    LintOptions opts = options_for(m.expected);
    opts.jobs = 8;
    opts.cost_hook = mutation_hook(m.name);
    const LintResult r = run_lint(opts);
    EXPECT_GT(r.total_errors(), 0) << m.name << ": gate did not trip";
    const Finding* f = find_diag(r, m.expected);
    ASSERT_NE(f, nullptr)
        << m.name << " expected " << diag_name(m.expected)
        << " but the sweep reported:\n"
        << r.summary();
    EXPECT_EQ(f->severity, Severity::Error) << m.name;
    EXPECT_FALSE(f->witness_a.empty()) << m.name;
  }
}

// ---- audit mode --------------------------------------------------------

TEST(LintAudit, FlipFlopAndHeuristicContradictionsAreFlagged) {
  tune::LookupTable table;
  core::HanConfig a;  // defaults
  core::HanConfig b = a;
  b.imod = "libnbc";
  b.ibalg = coll::Algorithm::Binomial;
  b.iralg = coll::Algorithm::Binomial;
  b.fs = 64 << 10;
  // A/B/A across three adjacent power-of-two bands.
  table.insert(coll::CollKind::Bcast, 2, 8, 1 << 20, a);
  table.insert(coll::CollKind::Bcast, 2, 8, 2 << 20, b);
  table.insert(coll::CollKind::Bcast, 2, 8, 4 << 20, a);
  // A config the §III-C heuristics reject outright: SOLO below 512KB.
  core::HanConfig solo = a;
  solo.smod = "solo";
  solo.fs = 64 << 10;
  table.insert(coll::CollKind::Allreduce, 2, 8, 1 << 20, solo);

  LintResult r;
  lint_lookup(table, r);
  std::sort(r.entries.begin(), r.entries.end(),
            [](const LintEntry& x, const LintEntry& y) {
              return x.name < y.name;
            });
  EXPECT_EQ(count_diag(r, Diag::DecisionFlipFlop), 1) << r.summary();
  EXPECT_EQ(count_diag(r, Diag::HeuristicContradiction), 1) << r.summary();
  // Audit findings inform; they do not trip the exit-code gate.
  EXPECT_EQ(r.total_errors(), 0);
  EXPECT_EQ(r.total_warnings(), 2);
  const auto named = [&](const std::string& n) {
    return std::any_of(r.entries.begin(), r.entries.end(),
                       [&](const LintEntry& e) { return e.name == n; });
  };
  EXPECT_TRUE(named("audit.bcast.2x8"));
  EXPECT_TRUE(named("audit.allreduce.2x8"));
}

TEST(LintAudit, StableBandsAreClean) {
  tune::LookupTable table;
  core::HanConfig a;
  // From 512KB up: below that the default fs=512KB segment exceeds the
  // message and the §III-C fs-vs-message rule rightly flags it.
  for (int log2 = 19; log2 <= 24; ++log2) {
    table.insert(coll::CollKind::Bcast, 2, 8, std::size_t{1} << log2, a);
  }
  LintResult r;
  lint_lookup(table, r);
  EXPECT_EQ(r.total_errors(), 0);
  EXPECT_EQ(r.total_warnings(), 0);
  EXPECT_GT(r.total_checks(), 0);
}

TEST(LintAudit, TuneDbRecordsArePrefixedBySignature) {
  tune::TuneDb db;
  tune::LookupTable table;
  core::HanConfig a;
  table.insert(coll::CollKind::Bcast, 2, 8, 1 << 20, a);
  const machine::MachineProfile profile =
      stock_profile("aries2x8");
  db.ingest(tune::signature_of(profile), table);

  LintResult r;
  lint_tunedb(db, r);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].name.rfind("db.", 0), 0u) << r.entries[0].name;
  EXPECT_NE(r.entries[0].name.find(".audit.bcast.2x8"), std::string::npos)
      << r.entries[0].name;
}

// ---- gate death test ---------------------------------------------------

TEST(LintGateDeathTest, UnknownScenarioAndMutationAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mpi::SimWorld world(stock_profile("aries2x8"));
        apply_scenario(world, "solar_flare");
      },
      "unknown perturbation scenario");
  EXPECT_DEATH(mutation_hook("no_such_defect"), "unknown mutation name");
}

}  // namespace
}  // namespace han::lint

// HAN core tests: hierarchical communicators, config round-trips, data
// correctness of every HAN collective across submodule combinations, and
// the headline timing property (HAN beats the flat default).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "coll_test_util.hpp"
#include "han/han.hpp"

namespace han::core {
namespace {

using coll::Algorithm;
using coll::CollConfig;
using coll::CollKind;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

struct HanHarness : test::CollHarness {
  explicit HanHarness(machine::MachineProfile profile, bool data_mode = true)
      : CollHarness(std::move(profile), data_mode), han(world, rt, mods) {}
  HanModule han;
};

// --- flat Hierarchy (2-level compatibility view) -------------------------

TEST(HanCommTest, TwoLevelStructure) {
  HanHarness h(machine::make_aries(3, 4));
  Hierarchy& hc = h.han.flat_hierarchy(h.world.world_comm());
  EXPECT_EQ(hc.node_count(), 3);
  EXPECT_EQ(hc.max_ppn(), 4);
  for (int pr = 0; pr < 12; ++pr) {
    EXPECT_EQ(hc.low(pr).size(), 4);
    EXPECT_EQ(hc.low_rank(pr), pr % 4);
    ASSERT_NE(hc.up(pr), nullptr);
    EXPECT_EQ(hc.up(pr)->size(), 3);
    EXPECT_EQ(hc.up_rank(pr), pr / 4);
  }
  // Up comm of rank 5 (local rank 1) contains exactly ranks 1, 5, 9.
  const mpi::Comm* up = hc.up(5);
  EXPECT_EQ(up->world_rank(0), 1);
  EXPECT_EQ(up->world_rank(1), 5);
  EXPECT_EQ(up->world_rank(2), 9);
}

TEST(HanCommTest, SingleNodeHasNoUpComm) {
  HanHarness h(machine::make_aries(1, 4));
  Hierarchy& hc = h.han.flat_hierarchy(h.world.world_comm());
  EXPECT_EQ(hc.node_count(), 1);
  for (int pr = 0; pr < 4; ++pr) EXPECT_EQ(hc.up(pr), nullptr);
}

TEST(HanCommTest, CachedPerCommunicator) {
  HanHarness h(machine::make_aries(2, 2));
  Hierarchy& a = h.han.flat_hierarchy(h.world.world_comm());
  Hierarchy& b = h.han.flat_hierarchy(h.world.world_comm());
  EXPECT_EQ(&a, &b);
}

TEST(HanCommTest, DistinctDescriptorsDistinctLadders) {
  // One comm can hold several ladders at once — the derived 3-level one
  // and the flat 2-level one — each cached independently.
  HanHarness h(machine::with_numa(machine::make_aries(2, 4), 2));
  Hierarchy& derived = h.han.hierarchy(h.world.world_comm());
  Hierarchy& flat = h.han.flat_hierarchy(h.world.world_comm());
  EXPECT_NE(&derived, &flat);
  EXPECT_EQ(derived.depth(), 3);
  EXPECT_EQ(flat.depth(), 2);
  EXPECT_EQ(&derived, &h.han.hierarchy(h.world.world_comm()));
  EXPECT_EQ(&flat, &h.han.flat_hierarchy(h.world.world_comm()));
}

// --- HanConfig ----------------------------------------------------------

TEST(HanConfigTest, ToStringParseRoundTrip) {
  HanConfig c;
  c.fs = 1 << 20;
  c.imod = "libnbc";
  c.smod = "solo";
  c.ibalg = Algorithm::Chain;
  c.iralg = Algorithm::Binomial;
  c.ibs = 32 << 10;
  c.irs = 16 << 10;
  c.window = 3;
  HanConfig parsed;
  ASSERT_TRUE(HanConfig::parse(c.to_string(), &parsed));
  EXPECT_EQ(parsed, c);
}

TEST(HanConfigTest, ParseRejectsGarbage) {
  HanConfig out;
  EXPECT_FALSE(HanConfig::parse("fs=4M bogus_key=1", &out));
  EXPECT_FALSE(HanConfig::parse("fs", &out));
  EXPECT_FALSE(HanConfig::parse("ibalg=quantum", &out));
}

TEST(HanConfigTest, StripeFactorRoundTripAndRejects) {
  // sf=1 is the default and never serialized (single-rail strings stay
  // byte-identical); any other value round-trips.
  HanConfig c;
  EXPECT_EQ(c.to_string().find(" sf="), std::string::npos);
  c.sf = 4;
  EXPECT_NE(c.to_string().find(" sf=4"), std::string::npos);
  HanConfig parsed;
  ASSERT_TRUE(HanConfig::parse(c.to_string(), &parsed));
  EXPECT_EQ(parsed.sf, 4);
  EXPECT_EQ(parsed, c);

  // Malformed stripe fields fail loudly instead of defaulting.
  HanConfig out;
  EXPECT_FALSE(HanConfig::parse("fs=64K sf=0", &out));
  EXPECT_FALSE(HanConfig::parse("fs=64K sf=-2", &out));
  EXPECT_FALSE(HanConfig::parse("fs=64K sf=65", &out));
  EXPECT_FALSE(HanConfig::parse("fs=64K sf=two", &out));
  EXPECT_FALSE(HanConfig::parse("fs=64K sf=4x", &out));
  EXPECT_FALSE(HanConfig::parse("fs=64K sf=", &out));
}

TEST(HanConfigTest, DefaultHeuristicShape) {
  // Small → libnbc + sm; large → adapt + solo (paper §III-C heuristics).
  const HanConfig small =
      HanModule::default_config(CollKind::Bcast, 64, 12, 4 << 10);
  EXPECT_EQ(small.imod, "libnbc");
  EXPECT_EQ(small.smod, "sm");
  const HanConfig large =
      HanModule::default_config(CollKind::Allreduce, 64, 12, 64 << 20);
  EXPECT_EQ(large.imod, "adapt");
  EXPECT_EQ(large.smod, "solo");
  EXPECT_GE(large.fs, 512u << 10);
}

// --- Bcast correctness ----------------------------------------------------

struct HanBcastCase {
  int nodes, ppn;
  int root;
  std::size_t count;
  HanConfig cfg;
};

HanConfig make_cfg(std::size_t fs, const char* imod, const char* smod,
                   Algorithm alg, std::size_t inter_seg) {
  HanConfig c;
  c.fs = fs;
  c.imod = imod;
  c.smod = smod;
  c.ibalg = alg;
  c.iralg = alg;
  c.ibs = inter_seg;
  c.irs = inter_seg;
  return c;
}

class HanBcast : public ::testing::TestWithParam<HanBcastCase> {};

TEST_P(HanBcast, DataArrivesEverywhere) {
  const auto& c = GetParam();
  HanHarness h(machine::make_aries(c.nodes, c.ppn));
  const int n = h.world.world_size();
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == c.root ? pattern_vec(c.root, c.count)
                          : std::vector<std::int32_t>(c.count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, c.root,
                            BufView::of(bufs[rank.world_rank],
                                        Datatype::Int32),
                            Datatype::Int32, c.cfg);
  });
  const auto expect = pattern_vec(c.root, c.count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HanBcast,
    ::testing::Values(
        // Multi-segment pipeline, every submodule combination.
        HanBcastCase{4, 4, 0, 8192,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary,
                              2 << 10)},
        HanBcastCase{4, 4, 0, 8192,
                     make_cfg(4 << 10, "adapt", "solo", Algorithm::Chain,
                              0)},
        HanBcastCase{4, 4, 0, 8192,
                     make_cfg(4 << 10, "libnbc", "sm", Algorithm::Binomial,
                              0)},
        HanBcastCase{4, 4, 0, 8192,
                     make_cfg(4 << 10, "libnbc", "solo", Algorithm::Binomial,
                              0)},
        // Non-leader root (local rank 2 on node 1).
        HanBcastCase{3, 4, 6, 4000,
                     make_cfg(8 << 10, "adapt", "sm", Algorithm::Binary,
                              4 << 10)},
        // Single segment (message smaller than fs).
        HanBcastCase{4, 2, 0, 16,
                     make_cfg(512 << 10, "adapt", "sm", Algorithm::Binomial,
                              0)},
        // Single node (no inter level).
        HanBcastCase{1, 6, 2, 1024,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary, 0)},
        // ppn == 1 (no intra level).
        HanBcastCase{6, 1, 1, 4096,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary,
                              0)}));

// --- Reduce correctness ---------------------------------------------------

class HanReduce : public ::testing::TestWithParam<HanBcastCase> {};

TEST_P(HanReduce, RootHoldsReduction) {
  const auto& c = GetParam();
  HanHarness h(machine::make_aries(c.nodes, c.ppn));
  const int n = h.world.world_size();
  std::vector<std::vector<std::int32_t>> send(n);
  std::vector<std::vector<std::int32_t>> recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, c.count);
    recv[r].assign(c.count, -99);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.ireduce_cfg(h.world.world_comm(), r, c.root,
                             BufView::of(send[r], Datatype::Int32),
                             BufView::of(recv[r], Datatype::Int32),
                             Datatype::Int32, ReduceOp::Sum, c.cfg);
  });
  EXPECT_EQ(recv[c.root], expected_reduce(ReduceOp::Sum, n, c.count));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(send[r], pattern_vec(r, c.count)) << "sendbuf clobbered " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HanReduce,
    ::testing::Values(
        HanBcastCase{4, 4, 0, 8192,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary,
                              2 << 10)},
        HanBcastCase{4, 4, 0, 8192,
                     make_cfg(4 << 10, "adapt", "solo", Algorithm::Binomial,
                              0)},
        HanBcastCase{3, 4, 6, 4000,
                     make_cfg(8 << 10, "libnbc", "sm", Algorithm::Binomial,
                              0)},
        HanBcastCase{1, 6, 2, 512,
                     make_cfg(4 << 10, "adapt", "solo", Algorithm::Binary,
                              0)},
        HanBcastCase{5, 1, 3, 2048,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Chain, 0)}));

// --- Allreduce correctness -------------------------------------------------

class HanAllreduce : public ::testing::TestWithParam<HanBcastCase> {};

TEST_P(HanAllreduce, EveryRankHoldsReduction) {
  const auto& c = GetParam();
  HanHarness h(machine::make_aries(c.nodes, c.ppn));
  const int n = h.world.world_size();
  std::vector<std::vector<std::int32_t>> send(n);
  std::vector<std::vector<std::int32_t>> recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, c.count);
    recv[r].assign(c.count, -99);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallreduce_cfg(h.world.world_comm(), r,
                                BufView::of(send[r], Datatype::Int32),
                                BufView::of(recv[r], Datatype::Int32),
                                Datatype::Int32, ReduceOp::Sum, c.cfg);
  });
  const auto expect = expected_reduce(ReduceOp::Sum, n, c.count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], expect) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HanAllreduce,
    ::testing::Values(
        // Deep pipeline: u = 8 segments exercises all 7 task types.
        HanBcastCase{4, 4, 0, 8192,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary,
                              2 << 10)},
        HanBcastCase{4, 4, 0, 8192,
                     make_cfg(4 << 10, "adapt", "solo", Algorithm::Binomial,
                              0)},
        HanBcastCase{3, 2, 0, 4000,
                     make_cfg(8 << 10, "libnbc", "sm", Algorithm::Binomial,
                              0)},
        // u = 2 and u = 3: pipeline shorter than its depth (tail tasks).
        HanBcastCase{4, 4, 0, 2048,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary, 0)},
        HanBcastCase{4, 4, 0, 3072,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary, 0)},
        // u = 1.
        HanBcastCase{4, 4, 0, 64,
                     make_cfg(512 << 10, "libnbc", "sm", Algorithm::Binomial,
                              0)},
        // No intra level: the split-ir/ib two-stage pipeline.
        HanBcastCase{6, 1, 0, 4096,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary, 0)},
        // Single node.
        HanBcastCase{1, 8, 0, 1024,
                     make_cfg(4 << 10, "adapt", "sm", Algorithm::Binary,
                              0)}));

// --- Gather / Scatter / Allgather -----------------------------------------

TEST(HanGather, CollectsNodeMajorBlocks) {
  HanHarness h(machine::make_aries(3, 4));
  const int n = 12, root = 5;
  const std::size_t count = 32;
  std::vector<std::vector<std::int32_t>> send(n);
  std::vector<std::int32_t> recv(count * n, -1);
  for (int r = 0; r < n; ++r) send[r] = pattern_vec(r, count);
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.igather(h.world.world_comm(), r, root,
                         BufView::of(send[r], Datatype::Int32),
                         r == root ? BufView::of(recv, Datatype::Int32)
                                   : BufView::timing_only(recv.size() * 4),
                         CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(recv[r * count + i], test::pattern(r, i))
          << "block " << r << " elem " << i;
    }
  }
}

TEST(HanScatter, DistributesNodeMajorBlocks) {
  HanHarness h(machine::make_aries(3, 4));
  const int n = 12, root = 0;
  const std::size_t count = 16;
  std::vector<std::int32_t> send(count * n);
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      send[r * count + i] = test::pattern(r, i);
    }
  }
  std::vector<std::vector<std::int32_t>> recv(n);
  for (int r = 0; r < n; ++r) recv[r].assign(count, -1);
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iscatter(h.world.world_comm(), r, root,
                          r == root ? BufView::of(send, Datatype::Int32)
                                    : BufView::timing_only(send.size() * 4),
                          BufView::of(recv[r], Datatype::Int32),
                          CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(recv[r], pattern_vec(r, count)) << "rank " << r;
  }
}

TEST(HanAllgather, EveryRankAssemblesAll) {
  HanHarness h(machine::make_aries(2, 3));
  const int n = 6;
  const std::size_t count = 24;
  std::vector<std::vector<std::int32_t>> send(n);
  std::vector<std::vector<std::int32_t>> recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count * n, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallgather(h.world.world_comm(), r,
                            BufView::of(send[r], Datatype::Int32),
                            BufView::of(recv[r], Datatype::Int32),
                            CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    for (int b = 0; b < n; ++b) {
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(recv[r][b * count + i], test::pattern(b, i))
            << "rank " << r << " block " << b;
      }
    }
  }
}

TEST(HanBarrier, HoldsUntilLastArrival) {
  HanHarness h(machine::make_aries(3, 3), /*data_mode=*/false);
  std::vector<double> leave(9, -1.0);
  h.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](HanHarness& h2, mpi::Rank& rank2,
              std::vector<double>& leave2) -> sim::CoTask {
      co_await sim::Delay{h2.world.engine(), rank2.world_rank * 10e-6};
      mpi::Request r =
          h2.han.ibarrier(h2.world.world_comm(), rank2.world_rank);
      co_await *r;
      leave2[rank2.world_rank] = h2.world.now();
    }(h, rank, leave);
  });
  for (int r = 0; r < 9; ++r) EXPECT_GE(leave[r], 80e-6) << "rank " << r;
}

// --- timing properties -----------------------------------------------------

double time_han_bcast(int nodes, int ppn, std::size_t bytes,
                      const HanConfig& cfg) {
  HanHarness h(machine::make_aries(nodes, ppn), /*data_mode=*/false);
  auto done = run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, 0,
                            BufView::timing_only(bytes), Datatype::Byte, cfg);
  });
  return *std::max_element(done.begin(), done.end());
}

double time_tuned_bcast(int nodes, int ppn, std::size_t bytes) {
  test::CollHarness h(machine::make_aries(nodes, ppn), /*data_mode=*/false);
  auto done = run_collective(h.world, [&](mpi::Rank& rank) {
    return h.mods.tuned().ibcast(h.world.world_comm(), rank.world_rank, 0,
                                 BufView::timing_only(bytes), Datatype::Byte,
                                 CollConfig{});
  });
  return *std::max_element(done.begin(), done.end());
}

TEST(HanTiming, BeatsTunedOnLargeBcast) {
  // The paper's headline: hierarchical pipelined bcast crushes the flat
  // default on fat nodes (Fig. 10/12: 1.73x-7.35x on large messages).
  const HanConfig cfg =
      make_cfg(512 << 10, "adapt", "sm", Algorithm::Binary, 64 << 10);
  const double han = time_han_bcast(8, 16, 16 << 20, cfg);
  const double tuned = time_tuned_bcast(8, 16, 16 << 20);
  EXPECT_LT(han * 1.5, tuned) << "HAN " << han << " vs tuned " << tuned;
}

TEST(HanTiming, PipeliningBeatsSingleSegmentLarge) {
  const HanConfig pipelined =
      make_cfg(512 << 10, "adapt", "sm", Algorithm::Binary, 64 << 10);
  const HanConfig whole =
      make_cfg(64 << 20, "adapt", "sm", Algorithm::Binary, 64 << 10);
  const double t_pipe = time_han_bcast(8, 8, 16 << 20, pipelined);
  const double t_whole = time_han_bcast(8, 8, 16 << 20, whole);
  EXPECT_LT(t_pipe, t_whole);
}

TEST(HanTiming, OverlapImperfectButReal) {
  // sbib tasks must cost less than ib+sb run back-to-back, but more than
  // max(ib, sb) (paper Fig. 2's core observation).
  const std::size_t seg = 64 << 10;
  const HanConfig cfg = make_cfg(seg, "adapt", "sm", Algorithm::Binary, 0);
  // Approximate task costs through whole-op timings: u=1 gives ib+sb
  // serialized; u=8 amortizes to the pipelined sbib cost.
  const double serial = time_han_bcast(6, 8, seg, cfg);          // ib+sb
  const double pipelined = time_han_bcast(6, 8, 8 * seg, cfg);   // 8 segs
  // If overlap were zero, pipelined ≈ 8 * serial; if perfect and sb ≈ ib,
  // pipelined ≈ (8+1)/2 * serial. Expect somewhere in between.
  EXPECT_LT(pipelined, 8.0 * serial);
  EXPECT_GT(pipelined, 3.0 * serial);
}

// --- scheduler window > 1 -----------------------------------------------

// A deeper in-flight window must keep the data correct and can only help
// the pipeline: it relaxes the lock-step gate while every data dependency
// stays enforced.
TEST(SchedulerWindow, DeepWindowCorrectAndNoSlower) {
  const std::size_t count = 16384;  // 64KB, 8 segments of 8KB
  auto run_with_window = [&](int window, std::vector<double>* times) {
    HanHarness h(machine::make_aries(4, 4));
    const int n = h.world.world_size();
    HanConfig cfg;
    cfg.fs = 8 << 10;
    cfg.imod = "adapt";
    cfg.smod = "sm";
    cfg.ibalg = Algorithm::Binary;
    cfg.iralg = Algorithm::Binary;
    cfg.ibs = 4 << 10;
    cfg.irs = 4 << 10;
    cfg.window = window;
    std::vector<std::vector<std::int32_t>> send(n), recv(n);
    for (int r = 0; r < n; ++r) {
      send[r] = pattern_vec(r, count);
      recv[r].assign(count, -1);
    }
    *times = run_collective(h.world, [&](mpi::Rank& rank) {
      const int me = rank.world_rank;
      return h.han.iallreduce_cfg(
          h.world.world_comm(), me, BufView::of(send[me], Datatype::Int32),
          BufView::of(recv[me], Datatype::Int32), Datatype::Int32,
          ReduceOp::Sum, cfg);
    });
    const auto expect = expected_reduce(ReduceOp::Sum, n, count);
    for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], expect) << "rank " << r;
  };
  std::vector<double> t1, t4;
  run_with_window(1, &t1);
  run_with_window(4, &t4);
  const double worst1 = *std::max_element(t1.begin(), t1.end());
  const double worst4 = *std::max_element(t4.begin(), t4.end());
  EXPECT_LE(worst4, worst1 * (1.0 + 1e-9))
      << "window=4 slower than lock-step";
}

// --- communicator destruction / context-id reuse ------------------------

// Freeing a comm must evict the cached Hierarchy ladders and the
// runtime's per-context call sequence before the context id is recycled;
// a fresh comm reusing the id would otherwise bind to the stale
// hierarchy.
TEST(Eviction, ContextReuseGetsFreshHanComm) {
  HanHarness h(machine::make_aries(2, 2));
  mpi::SimWorld& w = h.world;
  const std::vector<int> color(4, 0), key{0, 1, 2, 3};
  mpi::Comm* c1 = w.comm_split(w.world_comm(), color, key)[0];
  const int ctx = c1->context();

  HanConfig cfg;
  cfg.fs = 1 << 10;
  cfg.imod = "libnbc";
  cfg.smod = "sm";
  auto bcast_on = [&](mpi::Comm* c) {
    std::vector<std::vector<std::int32_t>> bufs(4);
    for (int r = 0; r < 4; ++r) {
      bufs[r] = r == 0 ? pattern_vec(0, 1024)
                       : std::vector<std::int32_t>(1024, -1);
    }
    run_collective(w, [&](mpi::Rank& rank) {
      return h.han.ibcast_cfg(
          *c, rank.world_rank, 0,
          BufView::of(bufs[rank.world_rank], Datatype::Int32),
          Datatype::Int32, cfg);
    });
    const auto expect = pattern_vec(0, 1024);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
  };

  bcast_on(c1);  // caches the ladder and advances call_seq on ctx
  w.free_comm(c1);

  // The recycled id must name a *fresh* hierarchy, not c1's.
  mpi::Comm* c2 = w.comm_split(w.world_comm(), color, key)[0];
  EXPECT_EQ(c2->context(), ctx);
  bcast_on(c2);
}

// Shrinking reuse: a size-2 comm's stale call_seq (sized for 2 ranks)
// would make a size-4 successor on the same context index out of bounds.
TEST(Eviction, ReuseByLargerCommunicator) {
  HanHarness h(machine::make_aries(2, 2));
  mpi::SimWorld& w = h.world;
  const std::vector<int> key{0, 1, 2, 3};
  const std::vector<int> pair_color{0, 0, -1, -1};
  mpi::Comm* small = w.comm_split(w.world_comm(), pair_color, key)[0];
  const int ctx = small->context();
  ASSERT_EQ(small->size(), 2);

  HanConfig cfg;
  cfg.fs = 1 << 10;
  cfg.imod = "libnbc";
  cfg.smod = "sm";
  std::vector<std::vector<std::int32_t>> bufs(4);
  for (int r = 0; r < 4; ++r) {
    bufs[r] = r == 0 ? pattern_vec(0, 256)
                     : std::vector<std::int32_t>(256, -1);
  }
  run_collective(w, [&](mpi::Rank& rank) -> mpi::Request {
    const int me = rank.world_rank;
    if (me >= 2) {  // not a member: nothing to do this phase
      mpi::Request r = mpi::make_request(w.engine());
      r->complete();
      return r;
    }
    return h.han.ibcast_cfg(*small, me, 0,
                            BufView::of(bufs[me], Datatype::Int32),
                            Datatype::Int32, cfg);
  });
  EXPECT_EQ(bufs[1], pattern_vec(0, 256));
  w.free_comm(small);

  const std::vector<int> all_color(4, 0);
  mpi::Comm* big = w.comm_split(w.world_comm(), all_color, key)[0];
  EXPECT_EQ(big->context(), ctx);
  ASSERT_EQ(big->size(), 4);
  for (int r = 1; r < 4; ++r) bufs[r].assign(256, -1);
  run_collective(w, [&](mpi::Rank& rank) {
    return h.han.ibcast_cfg(*big, rank.world_rank, 0,
                            BufView::of(bufs[rank.world_rank],
                                        Datatype::Int32),
                            Datatype::Int32, cfg);
  });
  const auto expect = pattern_vec(0, 256);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

TEST(Eviction, WorldCommCannotBeFreed) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  HanHarness h(machine::make_aries(1, 2));
  EXPECT_DEATH(h.world.free_comm(&h.world.world_comm()), "world");
}

}  // namespace
}  // namespace han::core

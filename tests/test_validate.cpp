// Structural validators: coll::validate_plan and task::validate_graph
// must name the first defect of a malformed schedule, and the runtime /
// scheduler entry points must refuse to execute one.
#include <gtest/gtest.h>

#include "coll_test_util.hpp"
#include "coll/validate.hpp"
#include "han/task/graph.hpp"
#include "han/task/scheduler.hpp"

namespace han {
namespace {

using coll::Action;
using coll::DepRef;
using coll::Plan;
using coll::SlotRef;
using coll::validate_plan;

// --- Plan validation ----------------------------------------------------

Plan two_rank_sendrecv() {
  Plan p(/*comm_size=*/2, /*user_slots=*/1);
  p.ranks[0].add(coll::send_action(/*peer=*/1, /*tag=*/0, 16, SlotRef{0, 0}));
  p.ranks[1].add(coll::recv_action(/*peer=*/0, /*tag=*/0, 16, SlotRef{0, 0}));
  return p;
}

TEST(PlanValidate, WellFormedPasses) {
  EXPECT_EQ(validate_plan(two_rank_sendrecv(), 2), "");
}

TEST(PlanValidate, RankCountMismatch) {
  EXPECT_NE(validate_plan(two_rank_sendrecv(), 3), "");
}

TEST(PlanValidate, PeerOutOfRange) {
  Plan p = two_rank_sendrecv();
  p.ranks[0].actions[0].peer = 2;
  EXPECT_NE(validate_plan(p, 2), "");
}

TEST(PlanValidate, SlotOutOfRange) {
  Plan p = two_rank_sendrecv();
  p.ranks[0].actions[0].src.slot = 5;  // 1 user slot, no temps
  const std::string err = validate_plan(p, 2);
  EXPECT_NE(err.find("slot"), std::string::npos) << err;
}

TEST(PlanValidate, TempSlotOverrun) {
  Plan p(1, 1);
  p.ranks[0].temp_slots.push_back(8);
  // Copy 16 bytes into an 8-byte temp (slot 1 = first temp).
  p.ranks[0].add(coll::copy_action(16, SlotRef{0, 0}, SlotRef{1, 0}));
  const std::string err = validate_plan(p, 1);
  EXPECT_NE(err.find("overruns"), std::string::npos) << err;
}

TEST(PlanValidate, CrossSlotCheckedAgainstPeer) {
  // CrossCopy reads the *peer's* slot table: rank 1 has a temp, rank 0
  // does not, so reading peer slot 1 is fine but local slot 1 is not.
  Plan p(2, 1);
  p.ranks[1].temp_slots.push_back(32);
  p.ranks[0].add(
      coll::cross_copy_action(/*peer=*/1, 32, SlotRef{1, 0}, SlotRef{0, 0}));
  EXPECT_EQ(validate_plan(p, 2), "");
  p.ranks[0].actions[0].peer = 0;  // now slot 1 resolves on rank 0: invalid
  EXPECT_NE(validate_plan(p, 2), "");
}

TEST(PlanValidate, DepIndexOutOfRange) {
  Plan p = two_rank_sendrecv();
  p.ranks[1].actions[0].deps.push_back(DepRef{0, 7, 0.0});
  EXPECT_NE(validate_plan(p, 2), "");
}

TEST(PlanValidate, SelfDependency) {
  Plan p = two_rank_sendrecv();
  p.ranks[0].actions[0].deps.push_back(coll::dep(0));
  const std::string err = validate_plan(p, 2);
  EXPECT_NE(err.find("itself"), std::string::npos) << err;
}

TEST(PlanValidate, CrossRankCycle) {
  // rank0.a0 -> rank1.a0 -> rank0.a0: a deadlock the per-rank view of
  // get_or_create's index asserts could never see.
  Plan p(2, 1);
  Action a;
  a.kind = Action::Kind::Noop;
  p.ranks[0].add(a);
  p.ranks[1].add(a);
  p.ranks[0].actions[0].deps.push_back(coll::cross_dep(1, 0, 0.0));
  p.ranks[1].actions[0].deps.push_back(coll::cross_dep(0, 0, 0.0));
  const std::string err = validate_plan(p, 2);
  EXPECT_NE(err.find("cycle"), std::string::npos) << err;
}

TEST(PlanValidate, NegativeTag) {
  Plan p = two_rank_sendrecv();
  p.ranks[0].actions[0].tag = -1;
  EXPECT_NE(validate_plan(p, 2), "");
}

// --- TaskGraph validation ----------------------------------------------

task::TaskNode noop_node(int step, std::vector<int> deps = {}) {
  task::TaskNode n;
  n.step = step;
  n.deps = std::move(deps);
  n.issue = [] { return mpi::Request{}; };
  return n;
}

TEST(GraphValidate, WellFormedPasses) {
  task::TaskGraph g;
  const int a = g.add(noop_node(0));
  g.add(noop_node(1, {a}));
  EXPECT_EQ(task::validate_graph(g), "");
}

TEST(GraphValidate, MissingIssueClosure) {
  task::TaskGraph g;
  task::TaskNode n;
  n.step = 0;
  g.add(std::move(n));
  const std::string err = task::validate_graph(g);
  EXPECT_NE(err.find("issue"), std::string::npos) << err;
}

TEST(GraphValidate, NegativeStep) {
  task::TaskGraph g;
  g.add(noop_node(-1));
  EXPECT_NE(task::validate_graph(g), "");
}

TEST(GraphValidate, DepOutOfRange) {
  task::TaskGraph g;
  g.add(noop_node(0, {3}));
  EXPECT_NE(task::validate_graph(g), "");
}

TEST(GraphValidate, Cycle) {
  task::TaskGraph g;
  g.add(noop_node(0, {1}));
  g.add(noop_node(0, {0}));
  const std::string err = task::validate_graph(g);
  EXPECT_NE(err.find("cycle"), std::string::npos) << err;
}

// --- rejection at the execution entry points ----------------------------

using ValidateDeath = ::testing::Test;

TEST(ValidateDeath, SchedulerRejectsCyclicGraph) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  test::CollHarness h(machine::make_aries(1, 2));
  task::TaskGraph g;
  g.add(noop_node(0, {1}));
  g.add(noop_node(0, {0}));
  EXPECT_DEATH(
      task::TaskScheduler::run(h.rt, std::move(g), /*window=*/1, 0),
      "cycle");
}

TEST(ValidateDeath, RuntimeRejectsMalformedPlan) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  test::CollHarness h(machine::make_aries(1, 2));
  auto build = [&] {
    Plan p(h.world.world_comm().size(), 1);
    p.ranks[0].add(
        coll::send_action(/*peer=*/99, /*tag=*/0, 8, SlotRef{0, 0}));
    return p;
  };
  EXPECT_DEATH(h.rt.start(h.world.world_comm(), 0, build,
                          {mpi::BufView::timing_only(8)}),
               "out-of-range");
}

}  // namespace
}  // namespace han

// Tests for the derived n-level hierarchy: topology descriptors, the
// recursive communicator ladder (3-level NUMA splits, leader chains, the
// n-level root trick), degenerate-shape collapse across every builder,
// and the timing benefit of the derived 3-level ladder on NUMA machines.
#include <gtest/gtest.h>

#include <algorithm>

#include "coll_test_util.hpp"
#include "han/han.hpp"

namespace han::core {
namespace {

using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

struct HierHarness : test::CollHarness {
  explicit HierHarness(machine::MachineProfile profile, bool data_mode = true)
      : CollHarness(std::move(profile), data_mode), han(world, rt, mods) {}
  HanModule han;
};

HanConfig cfg3() {
  HanConfig c;
  c.fs = 4 << 10;
  c.imod = "adapt";
  c.smod = "sm";
  c.ibalg = coll::Algorithm::Binary;
  c.iralg = coll::Algorithm::Binary;
  return c;
}

// --- TopologyDescriptor ---------------------------------------------------

TEST(TopologyDescriptor, FlatAndFromProfile) {
  const TopologyDescriptor flat = TopologyDescriptor::flat();
  EXPECT_EQ(flat.depth(), 2);
  EXPECT_EQ(flat.to_string(), "node<cluster");
  EXPECT_EQ(TopologyDescriptor::from_profile(machine::make_aries(4, 8)),
            flat);
  const TopologyDescriptor numa = TopologyDescriptor::from_profile(
      machine::with_numa(machine::make_aries(4, 8), 2));
  EXPECT_EQ(numa.depth(), 3);
  EXPECT_EQ(numa.to_string(), "numa<node<cluster");
}

TEST(TopologyDescriptor, ParseRoundTrip) {
  for (const char* text : {"node<cluster", "numa<node<cluster",
                           "numa<cluster"}) {
    TopologyDescriptor out;
    ASSERT_TRUE(TopologyDescriptor::parse(text, &out)) << text;
    EXPECT_EQ(out.to_string(), text);
  }
}

TEST(TopologyDescriptor, ParseRejectsMalformed) {
  TopologyDescriptor out;
  EXPECT_FALSE(TopologyDescriptor::parse("", &out));
  EXPECT_FALSE(TopologyDescriptor::parse("cluster", &out));        // depth 1
  EXPECT_FALSE(TopologyDescriptor::parse("node<node", &out));      // dup
  EXPECT_FALSE(TopologyDescriptor::parse("cluster<node", &out));   // order
  EXPECT_FALSE(TopologyDescriptor::parse("numa<node", &out));      // no top
  EXPECT_FALSE(TopologyDescriptor::parse("rack<cluster", &out));   // unknown
}

// --- machine plumbing -----------------------------------------------------

TEST(NumaMachine, WithNumaSplitsBuses) {
  const machine::MachineProfile base = machine::make_aries(4, 8);
  const machine::MachineProfile numa = machine::with_numa(base, 2);
  EXPECT_EQ(numa.numa_per_node, 2);
  EXPECT_DOUBLE_EQ(numa.membus_bandwidth, base.membus_bandwidth / 2);
  EXPECT_GT(numa.inter_numa_bandwidth, 0.0);
  EXPECT_LT(numa.inter_numa_bandwidth, numa.membus_bandwidth);
}

TEST(NumaMachine, RankPlacement) {
  mpi::SimWorld w(machine::with_numa(machine::make_aries(2, 8), 2));
  EXPECT_EQ(w.rank(0).numa, 0);
  EXPECT_EQ(w.rank(3).numa, 0);
  EXPECT_EQ(w.rank(4).numa, 1);
  EXPECT_EQ(w.rank(7).numa, 1);
  EXPECT_EQ(w.rank(12).numa, 1);  // node 1, local 4
}

TEST(NumaMachine, StockRegistryHasNumaVariants) {
  int numa_entries = 0;
  for (const machine::StockMachine& sm : machine::stock_machines()) {
    if (sm.profile.numa_per_node > 1) ++numa_entries;
    machine::MachineProfile resolved;
    ASSERT_TRUE(machine::make_stock(sm.profile.name, sm.profile.nodes,
                                    sm.profile.procs_per_node,
                                    sm.profile.numa_per_node, &resolved));
    EXPECT_EQ(resolved.numa_per_node, sm.profile.numa_per_node) << sm.name;
  }
  EXPECT_GE(numa_entries, 2) << "each stock family needs a NUMA variant";
  machine::MachineProfile unused;
  EXPECT_FALSE(machine::make_stock("quantum", 2, 8, 1, &unused));
}

TEST(NumaMachine, CrossNumaPipeSlowerThanLocal) {
  auto time_pipe = [](int dst) {
    mpi::SimWorld w(machine::with_numa(machine::make_aries(1, 8), 2));
    double done = 0.0;
    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      if (rank.world_rank == 0) {
        return [](mpi::SimWorld& w3, int dst3) -> sim::CoTask {
          mpi::Request r = w3.isend(w3.world_comm(), 0, dst3, 1,
                                   BufView::timing_only(1 << 20));
          co_await *r;
        }(w, dst);
      }
      if (rank.world_rank == dst) {
        return [](mpi::SimWorld& w2, int dst2, double& done2) -> sim::CoTask {
          mpi::Request r = w2.irecv(w2.world_comm(), dst2, 0, 1,
                                   BufView::timing_only(1 << 20));
          co_await *r;
          done2 = w2.now();
        }(w, dst, done);
      }
      return [](mpi::SimWorld&) -> sim::CoTask { co_return; }(w);
    });
    return done;
  };
  EXPECT_GT(time_pipe(4), time_pipe(1) * 1.1)
      << "a cross-socket pipe must be slower than a local one";
}

// --- three-level split ----------------------------------------------------

TEST(HierarchySplit, ThreeLevelLadder) {
  HierHarness h(machine::with_numa(machine::make_aries(3, 8), 2));
  Hierarchy& hc = h.han.hierarchy(h.world.world_comm());
  ASSERT_EQ(hc.depth(), 3);
  EXPECT_EQ(hc.level_name(0), "numa");
  EXPECT_EQ(hc.level_name(1), "node");
  EXPECT_EQ(hc.level_name(2), "cluster");
  EXPECT_EQ(hc.node_count(), 3);
  EXPECT_EQ(hc.max_ppn(), 8);
  for (int pr = 0; pr < 24; ++pr) {
    // Leaf: the 4 ranks sharing pr's NUMA domain.
    ASSERT_NE(hc.comm(0, pr), nullptr) << pr;
    EXPECT_EQ(hc.comm(0, pr)->size(), 4) << pr;
    EXPECT_EQ(hc.rank(0, pr), pr % 4) << pr;
    // Mid: every rank gets a family (the n-level root trick) joining its
    // slot across the node's 2 domains.
    ASSERT_NE(hc.comm(1, pr), nullptr) << pr;
    EXPECT_EQ(hc.comm(1, pr)->size(), 2) << pr;
    // Top: same slot below, one member per node.
    ASSERT_NE(hc.comm(2, pr), nullptr) << pr;
    EXPECT_EQ(hc.comm(2, pr)->size(), 3) << pr;
  }
  // Leader chains: NUMA leaders are local ranks 0 and 4; node leaders are
  // local rank 0 only.
  EXPECT_TRUE(hc.leader_below(1, 0));
  EXPECT_TRUE(hc.leader_below(1, 4));
  EXPECT_FALSE(hc.leader_below(1, 5));
  EXPECT_TRUE(hc.leader_below(2, 0));
  EXPECT_FALSE(hc.leader_below(2, 4));
  // Top family of rank 5 (slot 1 of domain 0) spans ranks 5, 13, 21.
  const mpi::Comm* top = hc.comm(2, 5);
  EXPECT_EQ(top->world_rank(0), 5);
  EXPECT_EQ(top->world_rank(1), 13);
  EXPECT_EQ(top->world_rank(2), 21);
  // The root trick's membership test: 5 shares slot-below with 13 at the
  // top level, but not with 12 (slot 0).
  EXPECT_TRUE(hc.same_slots_below(2, 5, 13));
  EXPECT_FALSE(hc.same_slots_below(2, 5, 12));
}

TEST(HierarchySplit, SingleNodeTopIsNulled) {
  HierHarness h(machine::with_numa(machine::make_aries(1, 8), 2));
  Hierarchy& hc = h.han.hierarchy(h.world.world_comm());
  ASSERT_EQ(hc.depth(), 3);
  EXPECT_EQ(hc.node_count(), 1);
  for (int pr = 0; pr < 8; ++pr) {
    EXPECT_EQ(hc.comm(2, pr), nullptr) << pr;  // nothing crosses the top
    ASSERT_NE(hc.comm(1, pr), nullptr) << pr;
    EXPECT_EQ(hc.comm(1, pr)->size(), 2) << pr;
  }
}

// --- three-level data correctness ----------------------------------------

TEST(Hierarchy3Bcast, DataArrivesEverywhere) {
  HierHarness h(machine::with_numa(machine::make_aries(3, 8), 2));
  const int n = 24;
  const std::size_t count = 8192;  // 32KB → 8 segments at fs=4K
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == 0 ? pattern_vec(0, count)
                     : std::vector<std::int32_t>(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, 0,
                            BufView::of(bufs[rank.world_rank],
                                        Datatype::Int32),
                            Datatype::Int32, cfg3());
  });
  const auto expect = pattern_vec(0, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

TEST(Hierarchy3Bcast, NonLeaderRoot) {
  // Root 13 sits on node 1, domain 1, slot 1: the root trick must ride
  // the families holding the root at every level.
  HierHarness h(machine::with_numa(machine::make_aries(3, 8), 2));
  const int n = 24, root = 13;
  const std::size_t count = 4096;
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == root ? pattern_vec(root, count)
                        : std::vector<std::int32_t>(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, root,
                            BufView::of(bufs[rank.world_rank],
                                        Datatype::Int32),
                            Datatype::Int32, cfg3());
  });
  const auto expect = pattern_vec(root, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

TEST(Hierarchy3Allreduce, EveryRankHoldsSum) {
  HierHarness h(machine::with_numa(machine::make_aries(3, 8), 2));
  const int n = 24;
  const std::size_t count = 8192;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallreduce_cfg(h.world.world_comm(), r,
                                BufView::of(send[r], Datatype::Int32),
                                BufView::of(recv[r], Datatype::Int32),
                                Datatype::Int32, ReduceOp::Sum, cfg3());
  });
  const auto expect = expected_reduce(ReduceOp::Sum, n, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], expect) << "rank " << r;
}

TEST(Hierarchy3Allreduce, FourDomains) {
  HierHarness h(machine::with_numa(machine::make_aries(2, 8), 4));
  const int n = 16;
  const std::size_t count = 2048;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallreduce_cfg(h.world.world_comm(), r,
                                BufView::of(send[r], Datatype::Int32),
                                BufView::of(recv[r], Datatype::Int32),
                                Datatype::Int32, ReduceOp::Max, cfg3());
  });
  const auto expect = expected_reduce(ReduceOp::Max, n, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], expect) << "rank " << r;
}

TEST(Hierarchy3Reduce, RootHoldsSum) {
  HierHarness h(machine::with_numa(machine::make_aries(2, 8), 2));
  const int n = 16, root = 0;
  const std::size_t count = 4096;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count, -99);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.ireduce_cfg(h.world.world_comm(), r, root,
                             BufView::of(send[r], Datatype::Int32),
                             BufView::of(recv[r], Datatype::Int32),
                             Datatype::Int32, ReduceOp::Sum, cfg3());
  });
  EXPECT_EQ(recv[root], expected_reduce(ReduceOp::Sum, n, count));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(send[r], pattern_vec(r, count)) << "sendbuf clobbered " << r;
  }
}

// --- degenerate-shape collapse (parameterized, all builders) --------------

struct DegenCase {
  const char* tag;
  int nodes, ppn, domains;
  int expect_depth;
  bool expect_top_null;  // top family nulled for every rank
};

class DegenerateLadder : public ::testing::TestWithParam<DegenCase> {};

machine::MachineProfile degen_profile(const DegenCase& c) {
  return machine::with_numa(machine::make_aries(c.nodes, c.ppn), c.domains);
}

TEST_P(DegenerateLadder, LadderCollapses) {
  const DegenCase& c = GetParam();
  HierHarness h(degen_profile(c));
  Hierarchy& hc = h.han.hierarchy(h.world.world_comm());
  EXPECT_EQ(hc.depth(), c.expect_depth);
  const int n = h.world.world_size();
  for (int pr = 0; pr < n; ++pr) {
    ASSERT_NE(hc.comm(0, pr), nullptr) << pr;  // level 0 is never null
    if (c.expect_top_null) {
      EXPECT_EQ(hc.comm(hc.depth() - 1, pr), nullptr) << pr;
    } else {
      EXPECT_NE(hc.comm(hc.depth() - 1, pr), nullptr) << pr;
    }
  }
}

TEST_P(DegenerateLadder, AllBuildersCorrect) {
  const DegenCase& c = GetParam();
  HierHarness h(degen_profile(c));
  const int n = h.world.world_size();
  const std::size_t count = 1024;
  const HanConfig cfg = cfg3();

  {  // bcast
    std::vector<std::vector<std::int32_t>> bufs(n);
    for (int r = 0; r < n; ++r) {
      bufs[r] = r == 0 ? pattern_vec(0, count)
                       : std::vector<std::int32_t>(count, -1);
    }
    run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, 0,
                              BufView::of(bufs[rank.world_rank],
                                          Datatype::Int32),
                              Datatype::Int32, cfg);
    });
    const auto expect = pattern_vec(0, count);
    for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "bcast " << r;
  }
  {  // reduce
    std::vector<std::vector<std::int32_t>> send(n), recv(n);
    for (int r = 0; r < n; ++r) {
      send[r] = pattern_vec(r, count);
      recv[r].assign(count, -1);
    }
    run_collective(h.world, [&](mpi::Rank& rank) {
      const int r = rank.world_rank;
      return h.han.ireduce_cfg(h.world.world_comm(), r, 0,
                               BufView::of(send[r], Datatype::Int32),
                               BufView::of(recv[r], Datatype::Int32),
                               Datatype::Int32, ReduceOp::Sum, cfg);
    });
    EXPECT_EQ(recv[0], expected_reduce(ReduceOp::Sum, n, count));
  }
  {  // allreduce
    std::vector<std::vector<std::int32_t>> send(n), recv(n);
    for (int r = 0; r < n; ++r) {
      send[r] = pattern_vec(r, count);
      recv[r].assign(count, -1);
    }
    run_collective(h.world, [&](mpi::Rank& rank) {
      const int r = rank.world_rank;
      return h.han.iallreduce_cfg(h.world.world_comm(), r,
                                  BufView::of(send[r], Datatype::Int32),
                                  BufView::of(recv[r], Datatype::Int32),
                                  Datatype::Int32, ReduceOp::Sum, cfg);
    });
    const auto expect = expected_reduce(ReduceOp::Sum, n, count);
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(recv[r], expect) << "allreduce " << r;
    }
  }
  {  // gather + scatter + allgather (flat internal ladder, NUMA machine)
    std::vector<std::vector<std::int32_t>> send(n);
    std::vector<std::int32_t> gathered(count * n, -1);
    for (int r = 0; r < n; ++r) send[r] = pattern_vec(r, count);
    run_collective(h.world, [&](mpi::Rank& rank) {
      const int r = rank.world_rank;
      return h.han.igather(h.world.world_comm(), r, 0,
                           BufView::of(send[r], Datatype::Int32),
                           r == 0 ? BufView::of(gathered, Datatype::Int32)
                                  : BufView::timing_only(gathered.size() * 4),
                           coll::CollConfig{});
    });
    for (int r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(gathered[r * count + i], test::pattern(r, i))
            << "gather block " << r;
      }
    }
    std::vector<std::vector<std::int32_t>> scattered(n);
    for (int r = 0; r < n; ++r) scattered[r].assign(count, -1);
    run_collective(h.world, [&](mpi::Rank& rank) {
      const int r = rank.world_rank;
      return h.han.iscatter(
          h.world.world_comm(), r, 0,
          r == 0 ? BufView::of(gathered, Datatype::Int32)
                 : BufView::timing_only(gathered.size() * 4),
          BufView::of(scattered[r], Datatype::Int32), coll::CollConfig{});
    });
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(scattered[r], pattern_vec(r, count)) << "scatter " << r;
    }
    std::vector<std::vector<std::int32_t>> all(n);
    for (int r = 0; r < n; ++r) all[r].assign(count * n, -1);
    run_collective(h.world, [&](mpi::Rank& rank) {
      const int r = rank.world_rank;
      return h.han.iallgather(h.world.world_comm(), r,
                              BufView::of(send[r], Datatype::Int32),
                              BufView::of(all[r], Datatype::Int32),
                              coll::CollConfig{});
    });
    for (int r = 0; r < n; ++r) EXPECT_EQ(all[r], gathered) << "allgather";
  }
  {  // barrier
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ibarrier(h.world.world_comm(), rank.world_rank);
    });
    for (double d : done) EXPECT_GE(d, 0.0);
  }
}

TEST_P(DegenerateLadder, FlatMachineDerivedEqualsForcedFlat) {
  // On a 1-domain machine the derived descriptor *is* node<cluster, so
  // lvl=0 (derive) and lvl=2 (force flat) must time identically.
  const DegenCase& c = GetParam();
  if (c.domains != 1) GTEST_SKIP() << "NUMA ladder intentionally differs";
  auto timed = [&](int lvl) {
    HierHarness h(degen_profile(c), /*data_mode=*/false);
    HanConfig cfg = cfg3();
    cfg.lvl = lvl;
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, 0,
                              BufView::timing_only(64 << 10), Datatype::Byte,
                              cfg);
    });
    return *std::max_element(done.begin(), done.end());
  };
  EXPECT_DOUBLE_EQ(timed(0), timed(2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DegenerateLadder,
    ::testing::Values(
        // One node, two domains: the cluster level nulls and collapses.
        DegenCase{"one_node_numa", 1, 8, 2, 3, true},
        // One proc per domain: the dead numa level splices away, leaving
        // exactly the flat node<cluster ladder.
        DegenCase{"one_proc_per_domain", 4, 2, 2, 3, false},
        // One domain: from_profile already derives the flat descriptor.
        DegenCase{"one_domain", 2, 4, 1, 2, false},
        // One proc per node.
        DegenCase{"one_ppn", 6, 1, 1, 2, false},
        // One node, flat.
        DegenCase{"one_node", 1, 4, 1, 2, true},
        // World of one.
        DegenCase{"one_rank", 1, 1, 1, 2, true}));

// --- timing: derived 3-level beats forced flat on NUMA machines -----------

TEST(HierarchyTiming, ThreeLevelsBeatTwoOnNumaMachine) {
  // On a NUMA machine, 2-level HAN's node-wide shm bcast drags every far-
  // socket reader across the inter-socket link; the 3-level pipeline
  // crosses it once per segment.
  const machine::MachineProfile prof =
      machine::with_numa(machine::make_aries(8, 16), 2);
  const std::size_t bytes = 8 << 20;
  HanConfig cfg;
  cfg.fs = 512 << 10;
  cfg.imod = "adapt";
  cfg.smod = "sm";
  cfg.ibalg = coll::Algorithm::Chain;
  cfg.iralg = coll::Algorithm::Chain;
  cfg.ibs = 64 << 10;

  auto timed = [&](int lvl) {
    HierHarness h(prof, /*data_mode=*/false);
    HanConfig c = cfg;
    c.lvl = lvl;
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, 0,
                              BufView::timing_only(bytes), Datatype::Byte, c);
    });
    return *std::max_element(done.begin(), done.end());
  };
  const double t2 = timed(/*lvl=*/2);
  const double t3 = timed(/*lvl=*/0);
  EXPECT_LT(t3, t2) << "3-level " << t3 << " vs 2-level " << t2;
}

}  // namespace
}  // namespace han::core

// Tests for autotuning step 2 (decision-rule compilation) and the
// execution tracer.
#include <gtest/gtest.h>

#include "autotune/decision.hpp"
#include "coll_test_util.hpp"
#include "han/han.hpp"

namespace han::tune {
namespace {

using coll::Algorithm;
using coll::CollKind;
using core::HanConfig;

HanConfig mk(const char* imod, std::size_t fs) {
  HanConfig c;
  c.imod = imod;
  c.fs = fs;
  return c;
}

LookupTable sample_table() {
  LookupTable t;
  // small sizes: libnbc; large: adapt — two runs that should compress to
  // two rules.
  t.insert(CollKind::Bcast, 8, 8, 4 << 10, mk("libnbc", 4 << 10));
  t.insert(CollKind::Bcast, 8, 8, 64 << 10, mk("libnbc", 64 << 10));
  t.insert(CollKind::Bcast, 8, 8, 1 << 20, mk("adapt", 512 << 10));
  t.insert(CollKind::Bcast, 8, 8, 16 << 20, mk("adapt", 512 << 10));
  return t;
}

TEST(DecisionRules, CompressesRunsOfEqualConfigs) {
  // The two libnbc entries differ (fs), so they stay separate; the two
  // adapt entries are identical and merge.
  const DecisionRules rules =
      DecisionRules::build(sample_table(), CollKind::Bcast, 8, 8);
  EXPECT_EQ(rules.rule_count(), 3u);
  EXPECT_FALSE(rules.empty());
}

TEST(DecisionRules, BoundariesAtLogMidpoints) {
  const DecisionRules rules =
      DecisionRules::build(sample_table(), CollKind::Bcast, 8, 8);
  // 4K bucket=12, 64K bucket=16 → threshold bucket 14 = 16K.
  EXPECT_EQ(rules.decide(8 << 10).imod, "libnbc");
  EXPECT_EQ(rules.decide(8 << 10).fs, 4u << 10);
  EXPECT_EQ(rules.decide(32 << 10).fs, 64u << 10);
  // 64K bucket=16, 1M bucket=20 → threshold bucket 18 = 256K.
  EXPECT_EQ(rules.decide(200 << 10).imod, "libnbc");
  EXPECT_EQ(rules.decide(300 << 10).imod, "adapt");
  // Beyond the last sample: last rule.
  EXPECT_EQ(rules.decide(1ull << 30).imod, "adapt");
  // Below the first sample: first rule.
  EXPECT_EQ(rules.decide(1).imod, "libnbc");
}

TEST(DecisionRules, EmptySliceYieldsEmptyRules) {
  const DecisionRules rules =
      DecisionRules::build(sample_table(), CollKind::Allreduce, 8, 8);
  EXPECT_TRUE(rules.empty());
}

TEST(DecisionRules, ToStringListsRanges) {
  const DecisionRules rules =
      DecisionRules::build(sample_table(), CollKind::Bcast, 8, 8);
  const std::string text = rules.to_string();
  EXPECT_NE(text.find("libnbc"), std::string::npos);
  EXPECT_NE(text.find("adapt"), std::string::npos);
  EXPECT_NE(text.find("inf"), std::string::npos);
}

TEST(RuleBookTest, DispatchesByShapeAndKind) {
  LookupTable t = sample_table();
  t.insert(CollKind::Allreduce, 8, 8, 1 << 20, mk("adapt", 1 << 20));
  t.insert(CollKind::Bcast, 32, 16, 1 << 20, mk("libnbc", 1 << 20));
  const RuleBook book = RuleBook::build(t);
  EXPECT_EQ(book.slice_count(), 3u);

  EXPECT_EQ(book.decide(CollKind::Bcast, 8, 8, 8 << 10).imod, "libnbc");
  EXPECT_EQ(book.decide(CollKind::Allreduce, 8, 8, 1 << 20).fs, 1u << 20);
  // Nearest shape: (16, 8) is closer to (8, 8) than to (32, 16).
  EXPECT_EQ(book.decide(CollKind::Bcast, 16, 8, 1 << 20).imod, "adapt");
  // Unknown kind: static default (must name valid modules).
  const HanConfig fb = book.decide(CollKind::Gather, 8, 8, 1 << 20);
  EXPECT_FALSE(fb.imod.empty());
}

TEST(RuleBookTest, DeciderDrivesHanModule) {
  test::CollHarness h(machine::make_aries(2, 2), /*data_mode=*/false);
  core::HanModule han(h.world, h.rt, h.mods);
  LookupTable t;
  t.insert(CollKind::Bcast, 2, 2, 1 << 20, mk("libnbc", 128 << 10));
  han.set_decider(RuleBook::build(t).decider());
  const HanConfig cfg =
      han.decide(CollKind::Bcast, h.world.world_comm(), 1 << 20);
  EXPECT_EQ(cfg.imod, "libnbc");
  EXPECT_EQ(cfg.fs, 128u << 10);
}

}  // namespace
}  // namespace han::tune

namespace han::sim {
namespace {

TEST(TracerTest, CollectsAndSerializesSpans) {
  Tracer tr;
  tr.span(0, "coll", "send 4K", 1e-6, 3e-6);
  tr.span(1, "coll", "recv \"q\"", 2e-6, 5e-6);
  EXPECT_EQ(tr.size(), 2u);
  const std::string json = tr.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("send 4K"), std::string::npos);
  EXPECT_NE(json.find("\\\"q\\\""), std::string::npos);  // escaping
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
}

TEST(TracerTest, RuntimeEmitsActionSpans) {
  test::CollHarness h(machine::make_aries(2, 2), /*data_mode=*/false);
  Tracer tr;
  h.rt.set_tracer(&tr);
  test::run_collective(h.world, [&](mpi::Rank& rank) {
    return h.mods.libnbc().ibcast(h.world.world_comm(), rank.world_rank, 0,
                                  mpi::BufView::timing_only(4096),
                                  mpi::Datatype::Byte, coll::CollConfig{});
  });
  EXPECT_GT(tr.size(), 0u);
  bool saw_send = false, saw_recv = false;
  for (const auto& s : tr.spans()) {
    saw_send |= s.name.rfind("send", 0) == 0;
    saw_recv |= s.name.rfind("recv", 0) == 0;
    EXPECT_GE(s.duration, 0.0);
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);
}

TEST(TracerTest, FileRoundTrip) {
  Tracer tr;
  tr.span(0, "x", "y", 0.0, 1e-6);
  const std::string path = "/tmp/han_trace_test.json";
  EXPECT_TRUE(tr.save(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace han::sim

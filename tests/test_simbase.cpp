// Unit tests for simbase: units, stats, RNG, event engine, coroutine glue.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "simbase/cotask.hpp"
#include "simbase/engine.hpp"
#include "simbase/inline_fn.hpp"
#include "simbase/rng.hpp"
#include "simbase/small_vec.hpp"
#include "simbase/stats.hpp"
#include "simbase/table.hpp"
#include "simbase/units.hpp"

namespace han::sim {
namespace {

// --- units ------------------------------------------------------------

TEST(Units, FormatBytesCollapsesPowerOfTwo) {
  EXPECT_EQ(format_bytes(0), "0");
  EXPECT_EQ(format_bytes(4), "4");
  EXPECT_EQ(format_bytes(1024), "1K");
  EXPECT_EQ(format_bytes(128 << 10), "128K");
  EXPECT_EQ(format_bytes(4 << 20), "4M");
  EXPECT_EQ(format_bytes(1ull << 30), "1G");
  EXPECT_EQ(format_bytes(1500), "1500");
}

TEST(Units, ParseBytesRoundTrip) {
  bool ok = false;
  EXPECT_EQ(parse_bytes("64K", &ok), 64u << 10);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_bytes("4M", &ok), 4u << 20);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_bytes("1G", &ok), 1ull << 30);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_bytes("128KB", &ok), 128u << 10);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_bytes("777", &ok), 777u);
  EXPECT_TRUE(ok);
}

TEST(Units, ParseBytesRejectsGarbage) {
  bool ok = true;
  EXPECT_EQ(parse_bytes("", &ok), 0u);
  EXPECT_FALSE(ok);
  parse_bytes("K4", &ok);
  EXPECT_FALSE(ok);
  parse_bytes("4X", &ok);
  EXPECT_FALSE(ok);
  parse_bytes("4KBs", &ok);
  EXPECT_FALSE(ok);
}

TEST(Units, FormatTimePicksUnit) {
  EXPECT_EQ(format_time(3.2e-6), "3.20us");
  EXPECT_EQ(format_time(1.5e-3), "1.50ms");
  EXPECT_EQ(format_time(2.0), "2.00s");
}

// --- stats ------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Stats, MeanAndExtremes) {
  const std::vector<double> v{2.0, 8.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(max_of(v), 8.0);
  EXPECT_DOUBLE_EQ(min_of(v), 2.0);
}

// --- rng --------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

// --- engine -----------------------------------------------------------

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, EqualTimesFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, CancelDropsEvent) {
  Engine e;
  bool fired = false;
  EventId id = e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilAdvancesClock) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] { ++count; });
  e.schedule_at(5.0, [&] { ++count; });
  e.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, NestedSchedulingFromCallback) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(1.0, [&] {
    e.schedule_after(0.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

// --- engine: hot-path regression suite ---------------------------------
//
// The pooled-event engine must preserve the original implementation's
// determinism contract bit-for-bit. The trace below was captured from the
// seed (priority_queue + map) engine over a deliberately tie-heavy
// schedule; any queue or pool change that alters firing order fails here.

TEST(Engine, GoldenEventOrderTrace) {
  // Generator: 160 roots over 8 distinct timestamps (Rng(0xD373C7)),
  // every third callback schedules two children (one zero-delay into the
  // draining batch, one at +0.5), every seventh root is cancelled.
  Engine e;
  Rng rng(0xD373C7ull);
  std::vector<int> order;
  std::vector<EventId> ids;
  int next_id = 0;
  for (int i = 0; i < 160; ++i) {
    const double t = static_cast<double>(rng.next_below(8));
    const int id = next_id++;
    ids.push_back(e.schedule_at(t, [&, id] {
      order.push_back(id);
      if (id % 3 == 0) {
        const int c1 = next_id++;
        e.schedule_after(0.0, [&order, c1] { order.push_back(c1); });
        const int c2 = next_id++;
        e.schedule_after(0.5, [&order, c2] { order.push_back(c2); });
      }
    }));
  }
  for (int i = 0; i < 160; i += 7) e.cancel(ids[i]);
  e.run();

  static const int kGolden[] = {
    34, 36, 51, 58, 74, 76, 80, 90, 96, 117, 122, 127, 143, 160, 162, 164,
    166, 168, 161, 163, 165, 167, 169, 15, 18, 25, 30, 39, 47, 55, 66, 75,
    94, 95, 109, 131, 135, 139, 157, 170, 172, 174, 176, 178, 180, 182, 171, 173,
    175, 177, 179, 181, 183, 44, 46, 62, 64, 68, 83, 89, 101, 111, 116, 184,
    185, 8, 17, 26, 31, 38, 41, 45, 50, 57, 67, 72, 81, 97, 100, 102,
    108, 130, 134, 152, 186, 188, 190, 192, 194, 196, 187, 189, 191, 193, 195, 197,
    10, 22, 29, 40, 52, 59, 60, 79, 85, 88, 93, 121, 124, 128, 132, 137,
    144, 149, 151, 158, 198, 200, 202, 204, 199, 201, 203, 205, 3, 5, 9, 19,
    32, 48, 69, 73, 78, 87, 99, 110, 113, 118, 120, 129, 136, 138, 141, 146,
    148, 153, 156, 206, 208, 210, 212, 214, 216, 218, 220, 222, 224, 226, 228, 230,
    207, 209, 211, 213, 215, 217, 219, 221, 223, 225, 227, 229, 231, 1, 11, 12,
    20, 23, 27, 43, 71, 82, 107, 115, 145, 150, 232, 234, 236, 233, 235, 237,
    2, 4, 6, 13, 16, 24, 33, 37, 53, 54, 61, 65, 86, 92, 103, 104,
    106, 114, 123, 125, 142, 155, 159, 238, 240, 242, 244, 246, 248, 250, 239, 241,
    243, 245, 247, 249, 251  };
  ASSERT_EQ(order.size(), std::size(kGolden));
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(order[i], kGolden[i]) << "first divergence at position " << i;
  }
  EXPECT_EQ(e.events_processed(), std::size(kGolden));
  EXPECT_DOUBLE_EQ(e.now(), 7.5);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, CancelReclaimsPoolSlots) {
  // Regression for the seed leak: cancelled events stayed in the callback
  // map forever. Schedule/cancel 10k events; the pool must recycle a small
  // working set instead of growing, and occupancy must return to zero.
  Engine e;
  for (int i = 0; i < 10000; ++i) {
    EventId id = e.schedule_at(static_cast<double>(i), [] {});
    e.cancel(id);
  }
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.pool_in_use(), 0u);
  // Eager reclamation: one slot is recycled 10k times.
  EXPECT_LE(e.pool_capacity(), 16u);
  e.run();
  EXPECT_EQ(e.events_processed(), 0u);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Engine, CancelInterleavedWithFiring) {
  // Cancel half the events while the rest fire; pool occupancy and the
  // live count must both drain to zero, and capacity must stay bounded by
  // the peak live population (slots recycle through the free list).
  Engine e;
  int fired = 0;
  std::vector<EventId> ids;
  for (int round = 0; round < 100; ++round) {
    ids.clear();
    for (int i = 0; i < 100; ++i) {
      ids.push_back(
          e.schedule_at(static_cast<double>(round), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 100; i += 2) e.cancel(ids[i]);
    e.run();
  }
  EXPECT_EQ(fired, 100 * 50);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.pool_in_use(), 0u);
  EXPECT_LE(e.pool_capacity(), 256u);  // one chunk covers the peak of 100
}

TEST(Engine, StaleEventIdIsInertAfterSlotReuse) {
  Engine e;
  bool first = false, second = false;
  EventId a = e.schedule_at(1.0, [&] { first = true; });
  e.cancel(a);
  // The new event recycles a's slot but gets a fresh sequence number.
  EventId b = e.schedule_at(2.0, [&] { second = true; });
  EXPECT_EQ(a.slot, b.slot);
  e.cancel(a);  // stale handle: must not kill b
  e.cancel(a);  // double-cancel: no-op
  e.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(Engine, SelfCancelInsideCallbackIsNoop) {
  Engine e;
  int fired = 0;
  EventId id{};
  id = e.schedule_at(1.0, [&] {
    ++fired;
    e.cancel(id);  // cancelling the event that is currently firing
  });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pool_in_use(), 0u);
}

TEST(Engine, CancelWithinDueBatch) {
  // An event cancelled by an earlier event at the SAME timestamp must not
  // fire even though both were already popped into the due batch.
  Engine e;
  bool victim_fired = false;
  EventId victim{};
  e.schedule_at(1.0, [&] { e.cancel(victim); });
  victim = e.schedule_at(1.0, [&] { victim_fired = true; });
  e.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.pool_in_use(), 0u);
}

TEST(Engine, CancelHeavyPurgeKeepsOrder) {
  // Enough cancellations to trigger queue compaction; survivors must still
  // fire in (time, FIFO) order.
  Engine e;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(e.schedule_at(static_cast<double>(i % 31), [&order, i] {
      order.push_back(i);
    }));
  }
  for (int i = 0; i < 2000; ++i) {
    if (i % 4 != 0) e.cancel(ids[i]);
  }
  e.run();
  ASSERT_EQ(order.size(), 500u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const int a = order[i - 1], b = order[i];
    EXPECT_TRUE(a % 31 < b % 31 || (a % 31 == b % 31 && a < b))
        << "out of order: " << a << " then " << b;
  }
  EXPECT_EQ(e.pool_in_use(), 0u);
}

// --- InlineFn -----------------------------------------------------------

TEST(InlineFnTest, SmallCaptureStaysInline) {
  int x = 0;
  InlineFn<void()> f([&x] { ++x; });
  EXPECT_TRUE(f.is_inline());
  f();
  EXPECT_EQ(x, 1);
}

TEST(InlineFnTest, LargeCaptureSpillsToHeap) {
  std::array<double, 16> big{};
  big[7] = 42.0;
  InlineFn<double()> f([big] { return big[7]; });
  EXPECT_FALSE(f.is_inline());
  EXPECT_DOUBLE_EQ(f(), 42.0);
}

TEST(InlineFnTest, MovePreservesNonTrivialCapture) {
  // unique_ptr capture exercises the non-trivial relocate path.
  auto p = std::make_unique<int>(7);
  InlineFn<int()> f([q = std::move(p)] { return *q; });
  InlineFn<int()> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));
  ASSERT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), 7);
  InlineFn<int()> h;
  h = std::move(g);
  EXPECT_EQ(h(), 7);
}

TEST(InlineFnTest, TrivialCaptureMovesByCopy) {
  int hits = 0;
  InlineFn<void()> f([&hits] { ++hits; });
  InlineFn<void()> g(std::move(f));
  g();
  g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_EQ(hits, 1);
}

TEST(InlineFnTest, DestructorRunsCaptureDtor) {
  auto counter = std::make_shared<int>(0);
  {
    InlineFn<void()> f([counter] { ++*counter; });
    f();
  }
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_EQ(*counter, 1);
}

// --- SmallVec -----------------------------------------------------------

TEST(SmallVecTest, StaysInlineUpToN) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, BackAndPopBack) {
  SmallVec<int, 4> v{1, 2, 3};
  EXPECT_EQ(v.back(), 3);
  v.pop_back();
  EXPECT_EQ(v.back(), 2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVecTest, EraseKeepsOrder) {
  SmallVec<int, 2> v{1, 2, 3, 4, 5};
  v.erase(v.begin() + 1, v.begin() + 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 4);
  EXPECT_EQ(v[2], 5);
}

TEST(SmallVecTest, MoveStealsHeapBuffer) {
  SmallVec<int, 2> v{1, 2, 3, 4};
  EXPECT_FALSE(v.is_inline());
  SmallVec<int, 2> w(std::move(v));
  EXPECT_TRUE(v.empty());
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[3], 4);
}

// --- coroutines -------------------------------------------------------

CoTask waiting_program(Engine& e, Waitable& w, double& resumed_at) {
  co_await w;
  resumed_at = e.now();
}

TEST(CoTaskTest, WaitableResumesAtCompletionTime) {
  Engine e;
  Waitable w(e);
  double resumed_at = -1.0;
  bool done = false;
  CoTask t = waiting_program(e, w, resumed_at);
  t.start([&] { done = true; });
  e.schedule_at(2.5, [&] { w.complete(); });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(resumed_at, 2.5);
}

CoTask delay_program(Engine& e, double& t1, double& t2) {
  co_await Delay{e, 1.0};
  t1 = e.now();
  co_await Delay{e, 0.25};
  t2 = e.now();
}

TEST(CoTaskTest, DelayAccumulates) {
  Engine e;
  double t1 = -1.0, t2 = -1.0;
  delay_program(e, t1, t2).start();
  e.run();
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 1.25);
}

CoTask immediate_program() { co_return; }

TEST(CoTaskTest, SynchronousCompletionStillFiresHook) {
  bool done = false;
  immediate_program().start([&] { done = true; });
  EXPECT_TRUE(done);
}

TEST(WaitableTest, CallbackAfterCompletionStillFires) {
  Engine e;
  Waitable w(e);
  w.complete();
  bool fired = false;
  w.on_complete([&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

// --- table ------------------------------------------------------------

TEST(TableTest, AlignedTextAndCsv) {
  Table t({"size", "time"});
  t.begin_row().cell("4").cell(1.5);
  t.begin_row().cell("1024").cell(23.25);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("size"), std::string::npos);
  EXPECT_NE(text.find("23.25"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "size,time\n4,1.50\n1024,23.25\n");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvQuotesCommas) {
  Table t({"a"});
  t.begin_row().cell("x,y");
  EXPECT_EQ(t.to_csv(), "a\n\"x,y\"\n");
}

}  // namespace
}  // namespace han::sim

// Unit tests for simbase: units, stats, RNG, event engine, coroutine glue.
#include <gtest/gtest.h>

#include <vector>

#include "simbase/cotask.hpp"
#include "simbase/engine.hpp"
#include "simbase/rng.hpp"
#include "simbase/stats.hpp"
#include "simbase/table.hpp"
#include "simbase/units.hpp"

namespace han::sim {
namespace {

// --- units ------------------------------------------------------------

TEST(Units, FormatBytesCollapsesPowerOfTwo) {
  EXPECT_EQ(format_bytes(0), "0");
  EXPECT_EQ(format_bytes(4), "4");
  EXPECT_EQ(format_bytes(1024), "1K");
  EXPECT_EQ(format_bytes(128 << 10), "128K");
  EXPECT_EQ(format_bytes(4 << 20), "4M");
  EXPECT_EQ(format_bytes(1ull << 30), "1G");
  EXPECT_EQ(format_bytes(1500), "1500");
}

TEST(Units, ParseBytesRoundTrip) {
  bool ok = false;
  EXPECT_EQ(parse_bytes("64K", &ok), 64u << 10);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_bytes("4M", &ok), 4u << 20);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_bytes("1G", &ok), 1ull << 30);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_bytes("128KB", &ok), 128u << 10);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_bytes("777", &ok), 777u);
  EXPECT_TRUE(ok);
}

TEST(Units, ParseBytesRejectsGarbage) {
  bool ok = true;
  EXPECT_EQ(parse_bytes("", &ok), 0u);
  EXPECT_FALSE(ok);
  parse_bytes("K4", &ok);
  EXPECT_FALSE(ok);
  parse_bytes("4X", &ok);
  EXPECT_FALSE(ok);
  parse_bytes("4KBs", &ok);
  EXPECT_FALSE(ok);
}

TEST(Units, FormatTimePicksUnit) {
  EXPECT_EQ(format_time(3.2e-6), "3.20us");
  EXPECT_EQ(format_time(1.5e-3), "1.50ms");
  EXPECT_EQ(format_time(2.0), "2.00s");
}

// --- stats ------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Stats, MeanAndExtremes) {
  const std::vector<double> v{2.0, 8.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(max_of(v), 8.0);
  EXPECT_DOUBLE_EQ(min_of(v), 2.0);
}

// --- rng --------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

// --- engine -----------------------------------------------------------

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, EqualTimesFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, CancelDropsEvent) {
  Engine e;
  bool fired = false;
  EventId id = e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilAdvancesClock) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] { ++count; });
  e.schedule_at(5.0, [&] { ++count; });
  e.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, NestedSchedulingFromCallback) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(1.0, [&] {
    e.schedule_after(0.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

// --- coroutines -------------------------------------------------------

CoTask waiting_program(Engine& e, Waitable& w, double& resumed_at) {
  co_await w;
  resumed_at = e.now();
}

TEST(CoTaskTest, WaitableResumesAtCompletionTime) {
  Engine e;
  Waitable w(e);
  double resumed_at = -1.0;
  bool done = false;
  CoTask t = waiting_program(e, w, resumed_at);
  t.start([&] { done = true; });
  e.schedule_at(2.5, [&] { w.complete(); });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(resumed_at, 2.5);
}

CoTask delay_program(Engine& e, double& t1, double& t2) {
  co_await Delay{e, 1.0};
  t1 = e.now();
  co_await Delay{e, 0.25};
  t2 = e.now();
}

TEST(CoTaskTest, DelayAccumulates) {
  Engine e;
  double t1 = -1.0, t2 = -1.0;
  delay_program(e, t1, t2).start();
  e.run();
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 1.25);
}

CoTask immediate_program() { co_return; }

TEST(CoTaskTest, SynchronousCompletionStillFiresHook) {
  bool done = false;
  immediate_program().start([&] { done = true; });
  EXPECT_TRUE(done);
}

TEST(WaitableTest, CallbackAfterCompletionStillFires) {
  Engine e;
  Waitable w(e);
  w.complete();
  bool fired = false;
  w.on_complete([&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

// --- table ------------------------------------------------------------

TEST(TableTest, AlignedTextAndCsv) {
  Table t({"size", "time"});
  t.begin_row().cell("4").cell(1.5);
  t.begin_row().cell("1024").cell(23.25);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("size"), std::string::npos);
  EXPECT_NE(text.find("23.25"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "size,time\n4,1.50\n1024,23.25\n");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvQuotesCommas) {
  Table t({"a"});
  t.begin_row().cell("x,y");
  EXPECT_EQ(t.to_csv(), "a\n\"x,y\"\n");
}

}  // namespace
}  // namespace han::sim

// Vendor comparator stacks, IMB/Netpipe drivers, and application kernels.
// These tests double as the calibration harness for the paper's figure
// shapes (who wins where).
#include <gtest/gtest.h>

#include "apps/asp.hpp"
#include "apps/horovod.hpp"
#include "apps/zero.hpp"
#include "benchkit/imb.hpp"
#include "benchkit/netpipe.hpp"

namespace han {
namespace {

using benchkit::ImbOptions;
using benchkit::NetpipeOptions;

machine::MachineProfile small_aries() { return machine::make_aries(8, 8); }
machine::MachineProfile small_opath() { return machine::make_opath(8, 12); }

double bcast_time(vendor::MpiStack& stack, std::size_t bytes) {
  ImbOptions opt;
  opt.sizes = {bytes};
  auto pts = benchkit::imb_bcast(stack, opt);
  return pts.at(0).avg_sec;
}

double allreduce_time(vendor::MpiStack& stack, std::size_t bytes) {
  ImbOptions opt;
  opt.sizes = {bytes};
  auto pts = benchkit::imb_allreduce(stack, opt);
  return pts.at(0).avg_sec;
}

TEST(StackFactory, KnownNamesConstruct) {
  for (const char* name : {"ompi", "han", "cray", "intel", "mvapich"}) {
    auto stack = vendor::make_stack(name, small_aries());
    ASSERT_NE(stack, nullptr);
    EXPECT_EQ(stack->name(), name);
    EXPECT_EQ(stack->world().world_size(), 64);
  }
}

TEST(ImbDriver, LadderAndPoints) {
  auto sizes = benchkit::size_ladder(4, 64);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 8, 16, 32, 64}));

  auto stack = vendor::make_stack("ompi", machine::make_aries(2, 2));
  ImbOptions opt;
  opt.sizes = {64, 4096};
  auto pts = benchkit::imb_bcast(*stack, opt);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_GT(pts[0].avg_sec, 0.0);
  EXPECT_GT(pts[1].avg_sec, pts[0].avg_sec);
  EXPECT_LE(pts[0].min_sec, pts[0].avg_sec);
  EXPECT_LE(pts[0].avg_sec, pts[0].max_sec);
}

TEST(Netpipe, OmpiDipsMidrangeVendorDoesNot) {
  // Fig. 11: Open MPI under Cray MPI between 16KB and 512KB; same peak.
  mpi::SimWorld ompi_world(small_aries());
  NetpipeOptions opt;
  opt.sizes = {128 << 10, 64 << 20};
  auto ompi_pts = benchkit::netpipe(ompi_world, opt);

  const machine::P2pParams cray = vendor::cray_p2p();
  mpi::SimWorld::Options wo;
  wo.p2p_override = &cray;
  mpi::SimWorld cray_world(small_aries(), wo);
  auto cray_pts = benchkit::netpipe(cray_world, opt);

  EXPECT_LT(ompi_pts[0].bandwidth_gbps, cray_pts[0].bandwidth_gbps * 0.75)
      << "128KB: ompi should sit well below cray";
  EXPECT_NEAR(ompi_pts[1].bandwidth_gbps, cray_pts[1].bandwidth_gbps,
              0.1 * cray_pts[1].bandwidth_gbps)
      << "peaks should match";
}

TEST(FigureShapes, BcastLargeHanBeatsEveryone) {
  // Fig. 10/12 large-message regime. Needs paper-like scale: the flat
  // chain's fill time (one hop per rank) only bites with many ranks.
  const std::size_t bytes = 16 << 20;
  const machine::MachineProfile prof = machine::make_aries(32, 8);
  auto han = vendor::make_stack("han", prof);
  auto ompi = vendor::make_stack("ompi", prof);
  auto cray = vendor::make_stack("cray", prof);
  const double t_han = bcast_time(*han, bytes);
  const double t_ompi = bcast_time(*ompi, bytes);
  const double t_cray = bcast_time(*cray, bytes);
  EXPECT_LT(t_han, t_ompi) << "HAN must beat default Open MPI";
  EXPECT_LT(t_han, t_cray) << "HAN must beat Cray MPI on large messages";
  EXPECT_LT(t_cray, t_ompi) << "vendor SMP-aware beats flat tuned";
}

TEST(FigureShapes, BcastSmallCrayBeatsHan) {
  // Fig. 10 small-message regime: Cray MPI's P2P advantage wins.
  const std::size_t bytes = 4 << 10;
  auto han = vendor::make_stack("han", small_aries());
  auto cray = vendor::make_stack("cray", small_aries());
  EXPECT_LT(bcast_time(*cray, bytes), bcast_time(*han, bytes));
}

TEST(FigureShapes, BcastMvapichLagsIntel) {
  // Fig. 12: MVAPICH2's hierarchy-unaware bcast trails Intel MPI.
  const std::size_t bytes = 1 << 20;
  auto intel = vendor::make_stack("intel", small_opath());
  auto mvapich = vendor::make_stack("mvapich", small_opath());
  EXPECT_LT(bcast_time(*intel, bytes), bcast_time(*mvapich, bytes));
}

TEST(FigureShapes, AllreduceLargeHanAndMvapichLead) {
  // Fig. 14: HAN fastest 4-64MB; MVAPICH2 close behind, both beat the
  // others.
  const std::size_t bytes = 16 << 20;
  auto han = vendor::make_stack("han", small_opath());
  auto ompi = vendor::make_stack("ompi", small_opath());
  auto intel = vendor::make_stack("intel", small_opath());
  auto mvapich = vendor::make_stack("mvapich", small_opath());
  const double t_han = allreduce_time(*han, bytes);
  const double t_ompi = allreduce_time(*ompi, bytes);
  const double t_intel = allreduce_time(*intel, bytes);
  const double t_mvapich = allreduce_time(*mvapich, bytes);
  EXPECT_LT(t_han, t_ompi);
  EXPECT_LT(t_han, t_intel);
  EXPECT_LT(t_mvapich, t_intel);
  EXPECT_LT(t_han, t_mvapich * 1.5) << "HAN and MVAPICH2 in the same class";
}

TEST(FigureShapes, AllreduceSmallVendorsBeatHan) {
  // Fig. 13/14 small messages: HAN's SM/Libnbc path lacks AVX reductions.
  const std::size_t bytes = 2 << 10;
  auto han = vendor::make_stack("han", small_opath());
  auto intel = vendor::make_stack("intel", small_opath());
  EXPECT_LT(allreduce_time(*intel, bytes), allreduce_time(*han, bytes));
}

TEST(AspApp, CommRatioOrderingMatchesTable3) {
  apps::AspOptions opt;
  opt.matrix_n = 1 << 20;  // 4MB rows: the paper's bcast-bound regime
  opt.iterations = 8;
  opt.compute_sec_per_iter = 2.0e-3;
  auto han = vendor::make_stack("han", small_opath());
  auto ompi = vendor::make_stack("ompi", small_opath());
  const apps::AspReport r_han = apps::run_asp(*han, opt);
  const apps::AspReport r_ompi = apps::run_asp(*ompi, opt);
  EXPECT_GT(r_han.comm_ratio, 0.0);
  EXPECT_LT(r_han.comm_ratio, 1.0);
  EXPECT_LT(r_han.comm_ratio, r_ompi.comm_ratio)
      << "HAN must cut ASP's communication share (Table III)";
  EXPECT_LT(r_han.total_sec, r_ompi.total_sec);
}

TEST(HorovodApp, HanTrainsFasterThanDefault) {
  apps::HorovodOptions opt;
  opt.model_bytes = 64 << 20;  // scaled-down model for test speed
  opt.fusion_bytes = 16 << 20;
  opt.compute_sec_per_step = 0.05;
  opt.steps = 2;
  opt.warmup_steps = 1;
  auto han = vendor::make_stack("han", small_opath());
  auto ompi = vendor::make_stack("ompi", small_opath());
  const apps::HorovodReport r_han = apps::run_horovod(*han, opt);
  const apps::HorovodReport r_ompi = apps::run_horovod(*ompi, opt);
  EXPECT_GT(r_han.images_per_sec, 0.0);
  EXPECT_EQ(r_han.workers, 96);
  EXPECT_GT(r_han.images_per_sec, r_ompi.images_per_sec)
      << "Fig. 15: HAN speeds up training";
}

TEST(ZeroApp, HanShardsFasterThanDefault) {
  // The sharded step leans on reduce-scatter + allgather; HAN's
  // hierarchical paths must beat the ompi fallback (allreduce-and-keep +
  // flat ring allgather).
  apps::ZeroOptions opt;
  opt.model_bytes = 64 << 20;  // scaled-down model for test speed
  opt.bucket_bytes = 16 << 20;
  opt.compute_sec_per_step = 0.05;
  opt.steps = 2;
  opt.warmup_steps = 1;
  auto han = vendor::make_stack("han", small_opath());
  auto ompi = vendor::make_stack("ompi", small_opath());
  const apps::ZeroReport r_han = apps::run_zero(*han, opt);
  const apps::ZeroReport r_ompi = apps::run_zero(*ompi, opt);
  EXPECT_EQ(r_han.workers, 96);
  EXPECT_GT(r_han.images_per_sec, 0.0);
  EXPECT_GT(r_han.gather_sec_per_step, 0.0);
  EXPECT_GE(r_han.comm_sec_per_step, r_han.gather_sec_per_step);
  EXPECT_GT(r_han.images_per_sec, r_ompi.images_per_sec)
      << "sharded training must benefit from hierarchical rs/ag";
}

TEST(ZeroApp, ShardedStepBeatsUnshardedCommBudget) {
  // ZeRO's rs+ag moves the same bytes as allreduce, so on the same stack
  // the sharded step should stay within ~2x of Horovod's (the allgather
  // is exposed where Horovod hides nothing extra).
  apps::ZeroOptions zopt;
  zopt.model_bytes = 32 << 20;
  zopt.bucket_bytes = 16 << 20;
  zopt.compute_sec_per_step = 0.05;
  zopt.steps = 2;
  zopt.warmup_steps = 1;
  apps::HorovodOptions hopt;
  hopt.model_bytes = zopt.model_bytes;
  hopt.fusion_bytes = zopt.bucket_bytes;
  hopt.compute_sec_per_step = zopt.compute_sec_per_step;
  hopt.steps = zopt.steps;
  hopt.warmup_steps = zopt.warmup_steps;
  auto han_z = vendor::make_stack("han", small_aries());
  auto han_h = vendor::make_stack("han", small_aries());
  const apps::ZeroReport rz = apps::run_zero(*han_z, zopt);
  const apps::HorovodReport rh = apps::run_horovod(*han_h, hopt);
  EXPECT_LT(rz.step_sec, rh.step_sec * 2.0);
}

TEST(HanStackAutotune, TunedAtLeastAsGoodAsDefault) {
  auto han = vendor::make_stack("han", machine::make_aries(4, 4));
  auto* hs = static_cast<vendor::HanStack*>(han.get());
  const double before = bcast_time(*han, 4 << 20);
  tune::TunerOptions topt;
  topt.message_sizes = {1 << 20, 4 << 20};
  topt.kinds = {coll::CollKind::Bcast};
  topt.heuristics = true;
  const tune::TuneReport report = hs->autotune(topt);
  EXPECT_GT(report.table.size(), 0u);
  const double after = bcast_time(*han, 4 << 20);
  EXPECT_LT(after, before * 1.1);  // tuned config must not regress
}

}  // namespace
}  // namespace han

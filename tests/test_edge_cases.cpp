// Edge-case hardening across layers: degenerate communicator shapes,
// zero-byte operations, segmenter boundaries, engine cancellation timing,
// cross-NUMA data correctness, and config-parsing corners.
#include <gtest/gtest.h>

#include "coll_test_util.hpp"
#include "autotune/lookup.hpp"
#include "han/han.hpp"

namespace han {
namespace {

using coll::Algorithm;
using coll::CollConfig;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

struct HanHarness : test::CollHarness {
  explicit HanHarness(machine::MachineProfile profile, bool data_mode = true)
      : CollHarness(std::move(profile), data_mode), han(world, rt, mods) {}
  core::HanModule han;
};

// --- engine -----------------------------------------------------------

TEST(EngineEdge, CancelAfterFireIsNoop) {
  sim::Engine e;
  int fired = 0;
  sim::EventId id = e.schedule_at(1.0, [&] { ++fired; });
  e.run();
  e.cancel(id);  // already fired
  e.schedule_at(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineEdge, ScheduleAtNowFromCallback) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(1);
    e.schedule_after(0.0, [&] { order.push_back(2); });
  });
  e.schedule_at(1.0, [&] { order.push_back(3); });
  e.run();
  // Same-time FIFO: the 0-delay event lands after the already-queued one.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// --- flownet ----------------------------------------------------------

TEST(FlownetEdge, AbortDuringBatchedStart) {
  sim::Engine e;
  net::FlowNet fn(e);
  const net::ResourceId r = fn.add_resource("link", 100.0);
  const net::ResourceId path[] = {r};
  bool fired = false;
  const net::FlowId f =
      fn.start_flow(path, 500.0, net::FlowNet::no_cap(), [&] { fired = true; });
  fn.abort_flow(f);  // before the batched rebalance even ran
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(fn.active_flows(), 0u);
}

// --- buffers / segmenter ------------------------------------------------

TEST(BufViewEdge, SliceOfTimingOnlyStaysTimingOnly) {
  BufView v = BufView::timing_only(100);
  BufView s = v.slice(10, 20);
  EXPECT_FALSE(s.has_data());
  EXPECT_EQ(s.bytes, 20u);
}

TEST(SegmenterEdge, ZeroByteMessage) {
  coll::Segmenter s(0, 4096, Datatype::Byte);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.length(0), 0u);
}

TEST(SegmenterEdge, SegmentEqualsMessage) {
  coll::Segmenter s(4096, 4096, Datatype::Byte);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.length(0), 4096u);
}

// --- config parsing -----------------------------------------------------

TEST(ConfigEdge, ParseEmptyStringYieldsDefaults) {
  core::HanConfig out;
  EXPECT_TRUE(core::HanConfig::parse("", &out));
  EXPECT_EQ(out, core::HanConfig{});
}

TEST(ConfigEdge, ParseSubsetOfKeys) {
  core::HanConfig out;
  ASSERT_TRUE(core::HanConfig::parse("fs=128K smod=solo", &out));
  EXPECT_EQ(out.fs, 128u << 10);
  EXPECT_EQ(out.smod, "solo");
  EXPECT_EQ(out.imod, "adapt");  // untouched default
}

// --- degenerate collective shapes ---------------------------------------

TEST(DegenerateShapes, WorldOfOne) {
  HanHarness h(machine::make_aries(1, 1));
  std::vector<std::int32_t> buf{7, 8, 9};
  std::vector<std::int32_t> send{1, 2, 3}, recv{0, 0, 0};
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast(h.world.world_comm(), rank.world_rank, 0,
                        BufView::of(buf, Datatype::Int32), Datatype::Int32,
                        CollConfig{});
  });
  EXPECT_EQ(buf, (std::vector<std::int32_t>{7, 8, 9}));
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.iallreduce(h.world.world_comm(), rank.world_rank,
                            BufView::of(send, Datatype::Int32),
                            BufView::of(recv, Datatype::Int32),
                            Datatype::Int32, ReduceOp::Sum, CollConfig{});
  });
  EXPECT_EQ(recv, send);
}

TEST(DegenerateShapes, TwoRanksTwoNodes) {
  HanHarness h(machine::make_aries(2, 1));
  std::vector<std::vector<std::int32_t>> send(2), recv(2);
  send[0] = {5};
  send[1] = {11};
  recv[0] = recv[1] = {0};
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallreduce(h.world.world_comm(), r,
                            BufView::of(send[r], Datatype::Int32),
                            BufView::of(recv[r], Datatype::Int32),
                            Datatype::Int32, ReduceOp::Sum, CollConfig{});
  });
  EXPECT_EQ(recv[0][0], 16);
  EXPECT_EQ(recv[1][0], 16);
}

TEST(DegenerateShapes, ZeroByteBcastCompletes) {
  HanHarness h(machine::make_aries(2, 2), /*data_mode=*/false);
  auto done = run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast(h.world.world_comm(), rank.world_rank, 0,
                        BufView::timing_only(0), Datatype::Byte,
                        CollConfig{});
  });
  for (double d : done) EXPECT_GE(d, 0.0);
}

TEST(DegenerateShapes, SingleElementAllreduceAllModules) {
  for (const char* smod : {"sm", "solo"}) {
    for (const char* imod : {"libnbc", "adapt"}) {
      HanHarness h(machine::make_aries(2, 3));
      core::HanConfig cfg;
      cfg.imod = imod;
      cfg.smod = smod;
      std::vector<std::vector<std::int32_t>> send(6), recv(6);
      for (int r = 0; r < 6; ++r) {
        send[r] = {r + 1};
        recv[r] = {0};
      }
      run_collective(h.world, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.iallreduce_cfg(h.world.world_comm(), r,
                                    BufView::of(send[r], Datatype::Int32),
                                    BufView::of(recv[r], Datatype::Int32),
                                    Datatype::Int32, ReduceOp::Sum, cfg);
      });
      for (int r = 0; r < 6; ++r) {
        EXPECT_EQ(recv[r][0], 21) << imod << "/" << smod << " rank " << r;
      }
    }
  }
}

// --- cross-NUMA data correctness -----------------------------------------

TEST(NumaData, SmBcastAcrossDomains) {
  // SM's CrossCopy must deliver correct bytes when readers sit in the
  // other socket (the cross-NUMA path in the executor).
  HanHarness h(machine::with_numa(machine::make_aries(1, 8), 2));
  const int n = 8;
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == 0 ? pattern_vec(0, 1000)
                     : std::vector<std::int32_t>(1000, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.mods.sm().ibcast(h.world.world_comm(), rank.world_rank, 0,
                              BufView::of(bufs[rank.world_rank],
                                          Datatype::Int32),
                              Datatype::Int32, CollConfig{});
  });
  const auto expect = pattern_vec(0, 1000);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

TEST(NumaData, SoloReduceAcrossDomains) {
  HanHarness h(machine::with_numa(machine::make_aries(1, 8), 4));
  const int n = 8;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, 500);
    recv[r].assign(500, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.mods.solo().ireduce(h.world.world_comm(), r, 0,
                                 BufView::of(send[r], Datatype::Int32),
                                 BufView::of(recv[r], Datatype::Int32),
                                 Datatype::Int32, ReduceOp::Sum,
                                 CollConfig{});
  });
  EXPECT_EQ(recv[0], expected_reduce(ReduceOp::Sum, n, 500));
}

// --- lookup table edge ----------------------------------------------------

TEST(LookupEdge, EmptyTableFallsBackToDefault) {
  tune::LookupTable t;
  const core::HanConfig cfg =
      t.decide(coll::CollKind::Bcast, 8, 8, 1 << 20);
  EXPECT_FALSE(cfg.imod.empty());
  EXPECT_FALSE(cfg.smod.empty());
}

TEST(LookupEdge, ZeroByteDecision) {
  tune::LookupTable t;
  t.insert(coll::CollKind::Bcast, 4, 4, 1, core::HanConfig{});
  EXPECT_NE(t.find(coll::CollKind::Bcast, 4, 4, 0), nullptr);
}

}  // namespace
}  // namespace han

// Tests for the three-level (NUMA) extension: machine plumbing, Comm3
// splits, data correctness of the 3-level Bcast/Allreduce pipelines, and
// the timing benefit over the 2-level pipeline on NUMA machines.
#include <gtest/gtest.h>

#include "coll_test_util.hpp"
#include "han/han3.hpp"

namespace han::core {
namespace {

using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

struct Han3Harness : test::CollHarness {
  explicit Han3Harness(machine::MachineProfile profile,
                       bool data_mode = true)
      : CollHarness(std::move(profile), data_mode),
        han(world, rt, mods),
        han3(han) {}
  HanModule han;
  Han3 han3;
};

HanConfig cfg3() {
  HanConfig c;
  c.fs = 4 << 10;
  c.imod = "adapt";
  c.smod = "sm";
  c.ibalg = coll::Algorithm::Binary;
  c.iralg = coll::Algorithm::Binary;
  return c;
}

TEST(NumaMachine, WithNumaSplitsBuses) {
  const machine::MachineProfile base = machine::make_aries(4, 8);
  const machine::MachineProfile numa = machine::with_numa(base, 2);
  EXPECT_EQ(numa.numa_per_node, 2);
  EXPECT_DOUBLE_EQ(numa.membus_bandwidth, base.membus_bandwidth / 2);
  EXPECT_GT(numa.inter_numa_bandwidth, 0.0);
  EXPECT_LT(numa.inter_numa_bandwidth, numa.membus_bandwidth);
}

TEST(NumaMachine, RankPlacement) {
  mpi::SimWorld w(machine::with_numa(machine::make_aries(2, 8), 2));
  EXPECT_EQ(w.rank(0).numa, 0);
  EXPECT_EQ(w.rank(3).numa, 0);
  EXPECT_EQ(w.rank(4).numa, 1);
  EXPECT_EQ(w.rank(7).numa, 1);
  EXPECT_EQ(w.rank(12).numa, 1);  // node 1, local 4
}

TEST(NumaMachine, CrossNumaPipeSlowerThanLocal) {
  auto time_pipe = [](int dst) {
    mpi::SimWorld w(machine::with_numa(machine::make_aries(1, 8), 2));
    double done = 0.0;
    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      if (rank.world_rank == 0) {
        return [](mpi::SimWorld& w3, int dst3) -> sim::CoTask {
          mpi::Request r = w3.isend(w3.world_comm(), 0, dst3, 1,
                                   BufView::timing_only(1 << 20));
          co_await *r;
        }(w, dst);
      }
      if (rank.world_rank == dst) {
        return [](mpi::SimWorld& w2, int dst2, double& done2) -> sim::CoTask {
          mpi::Request r = w2.irecv(w2.world_comm(), dst2, 0, 1,
                                   BufView::timing_only(1 << 20));
          co_await *r;
          done2 = w2.now();
        }(w, dst, done);
      }
      return [](mpi::SimWorld&) -> sim::CoTask { co_return; }(w);
    });
    return done;
  };
  EXPECT_GT(time_pipe(4), time_pipe(1) * 1.1)
      << "a cross-socket pipe must be slower than a local one";
}

TEST(Han3CommTest, ThreeLevelSplit) {
  Han3Harness h(machine::with_numa(machine::make_aries(3, 8), 2));
  EXPECT_TRUE(h.han3.applicable());
  Han3::Comm3& c3 = h.han3.comm3(h.world.world_comm());
  for (int pr = 0; pr < 24; ++pr) {
    EXPECT_EQ(c3.leaf[pr]->size(), 4) << pr;
    EXPECT_EQ(c3.leaf_rank[pr], pr % 4) << pr;
  }
  // NUMA leaders: local ranks 0 and 4 of each node.
  EXPECT_TRUE(c3.numa_leader(0));
  EXPECT_TRUE(c3.numa_leader(4));
  EXPECT_FALSE(c3.numa_leader(5));
  ASSERT_NE(c3.mid[0], nullptr);
  EXPECT_EQ(c3.mid[0]->size(), 2);
  EXPECT_EQ(c3.mid[4], c3.mid[0]);
  EXPECT_EQ(c3.mid[5], nullptr);
  // Node leaders: local rank 0 — exactly one up comm of size 3.
  EXPECT_TRUE(c3.node_leader(0));
  EXPECT_FALSE(c3.node_leader(4));
  ASSERT_NE(c3.up[0], nullptr);
  EXPECT_EQ(c3.up[0]->size(), 3);
  EXPECT_EQ(c3.up[8], c3.up[0]);
}

TEST(Han3Bcast, DataArrivesEverywhere) {
  Han3Harness h(machine::with_numa(machine::make_aries(3, 8), 2));
  const int n = 24;
  const std::size_t count = 8192;  // 32KB → 8 segments at fs=4K
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == 0 ? pattern_vec(0, count)
                     : std::vector<std::int32_t>(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han3.ibcast(h.world.world_comm(), rank.world_rank, 0,
                         BufView::of(bufs[rank.world_rank], Datatype::Int32),
                         Datatype::Int32, cfg3());
  });
  const auto expect = pattern_vec(0, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

TEST(Han3Allreduce, EveryRankHoldsSum) {
  Han3Harness h(machine::with_numa(machine::make_aries(3, 8), 2));
  const int n = 24;
  const std::size_t count = 8192;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han3.iallreduce(h.world.world_comm(), r,
                             BufView::of(send[r], Datatype::Int32),
                             BufView::of(recv[r], Datatype::Int32),
                             Datatype::Int32, ReduceOp::Sum, cfg3());
  });
  const auto expect = expected_reduce(ReduceOp::Sum, n, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], expect) << "rank " << r;
}

TEST(Han3Allreduce, FourDomains) {
  Han3Harness h(machine::with_numa(machine::make_aries(2, 8), 4));
  const int n = 16;
  const std::size_t count = 2048;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han3.iallreduce(h.world.world_comm(), r,
                             BufView::of(send[r], Datatype::Int32),
                             BufView::of(recv[r], Datatype::Int32),
                             Datatype::Int32, ReduceOp::Max, cfg3());
  });
  const auto expect = expected_reduce(ReduceOp::Max, n, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], expect) << "rank " << r;
}

TEST(Han3Timing, ThreeLevelsBeatTwoOnNumaMachine) {
  // On a NUMA machine, 2-level HAN's node-wide shm bcast drags every far-
  // socket reader across the inter-socket link; the 3-level pipeline
  // crosses it once per segment.
  const machine::MachineProfile prof =
      machine::with_numa(machine::make_aries(8, 16), 2);
  const std::size_t bytes = 8 << 20;
  HanConfig cfg;
  cfg.fs = 512 << 10;
  cfg.imod = "adapt";
  cfg.smod = "sm";
  cfg.ibalg = coll::Algorithm::Chain;
  cfg.iralg = coll::Algorithm::Chain;
  cfg.ibs = 64 << 10;

  double t2 = 0.0, t3 = 0.0;
  {
    Han3Harness h(prof, /*data_mode=*/false);
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, 0,
                              BufView::timing_only(bytes), Datatype::Byte,
                              cfg);
    });
    t2 = *std::max_element(done.begin(), done.end());
  }
  {
    Han3Harness h(prof, /*data_mode=*/false);
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han3.ibcast(h.world.world_comm(), rank.world_rank, 0,
                           BufView::timing_only(bytes), Datatype::Byte, cfg);
    });
    t3 = *std::max_element(done.begin(), done.end());
  }
  EXPECT_LT(t3, t2) << "3-level " << t3 << " vs 2-level " << t2;
}

}  // namespace
}  // namespace han::core

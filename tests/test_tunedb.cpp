// han::tune::TuneDb — machine signatures, the versioned on-disk format,
// staleness detection, and the warm-start tuning workflow
// (docs/TUNING_SERVICE.md).
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "autotune/tunedb.hpp"
#include "coll/module.hpp"
#include "coll/runtime.hpp"
#include "han/han.hpp"
#include "machine/machine.hpp"

namespace han::tune {
namespace {

using coll::Algorithm;
using coll::CollKind;
using core::HanConfig;

HanConfig cfg_of(std::size_t fs, const char* imod, const char* smod,
                 Algorithm alg, std::size_t iseg) {
  HanConfig c;
  c.fs = fs;
  c.imod = imod;
  c.smod = smod;
  c.ibalg = alg;
  c.iralg = alg;
  c.ibs = iseg;
  c.irs = iseg;
  return c;
}

// --- machine signatures --------------------------------------------------

TEST(MachineSignature, DeterministicPerProfile) {
  const MachineSignature a = signature_of(machine::make_aries(8, 4));
  const MachineSignature b = signature_of(machine::make_aries(8, 4));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.key(), "aries.8x4.numa1");
}

TEST(MachineSignature, TopologyChangesTheKey) {
  EXPECT_NE(signature_of(machine::make_aries(8, 4)).key(),
            signature_of(machine::make_aries(8, 2)).key());
  EXPECT_NE(signature_of(machine::make_aries(8, 4)).key(),
            signature_of(machine::make_opath(8, 4)).key());
  EXPECT_EQ(signature_of(machine::with_numa(machine::make_aries(8, 4), 2))
                .key(),
            "aries.8x4.numa2");
}

TEST(MachineSignature, ScalarChangeInvalidatesEveryBand) {
  machine::MachineProfile p = machine::make_aries(8, 4);
  const MachineSignature before = signature_of(p);
  p.net_latency *= 1.5;
  const MachineSignature after = signature_of(p);
  EXPECT_EQ(before.key(), after.key());
  EXPECT_NE(before.scalar_hash, after.scalar_hash);
  for (int b = 0; b < MachineSignature::kBands; ++b) {
    EXPECT_NE(before.band_hash[b], after.band_hash[b]) << "band " << b;
  }
}

TEST(MachineSignature, CurvePerturbationStaysLocalToItsBands) {
  machine::MachineProfile p = machine::make_aries(8, 4);
  const MachineSignature before = signature_of(p);
  // Scale the knots at >= 2MB. The nearest untouched knot sits at 512KB
  // (2^19), so interpolation changes reach down into band 19 and no
  // further.
  machine::scale_net_efficiency(p, /*factor=*/0.9, /*min_bytes=*/2 << 20);
  const MachineSignature after = signature_of(p);
  EXPECT_EQ(before.scalar_hash, after.scalar_hash);
  for (int b = 0; b < 19; ++b) {
    EXPECT_EQ(before.band_hash[b], after.band_hash[b]) << "band " << b;
  }
  for (int b = 19; b < MachineSignature::kBands; ++b) {
    EXPECT_NE(before.band_hash[b], after.band_hash[b]) << "band " << b;
  }
}

TEST(MachineSignature, BandClampsOutOfRangeBuckets) {
  const MachineSignature sig = signature_of(machine::make_aries(4, 2));
  EXPECT_EQ(sig.band(-5), sig.band(0));
  EXPECT_EQ(sig.band(99), sig.band(MachineSignature::kBands - 1));
}

// --- persistence ---------------------------------------------------------

/// A DB with `machines` records whose signatures carry pseudo-random
/// hashes — exercises the full hex round trip, not just friendly values.
TuneDb randomized_db(int machines, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TuneDb db;
  for (int i = 0; i < machines; ++i) {
    MachineSignature sig;
    sig.topo = "fake" + std::to_string(i) + "." + std::to_string(2 + i) +
               "x4.numa1";
    sig.scalar_hash = rng();
    for (int b = 0; b < MachineSignature::kBands; ++b) sig.band_hash[b] = rng();
    LookupTable t;
    t.insert(CollKind::Bcast, 2 + i, 4, 64 << 10,
             cfg_of(64 << 10, "adapt", "sm", Algorithm::Chain, 32 << 10));
    t.insert(CollKind::Allreduce, 2 + i, 4, 4 << 20,
             cfg_of(1 << 20, "libnbc", "solo", Algorithm::Binomial, 64 << 10));
    db.ingest(sig, t);
  }
  return db;
}

TEST(TuneDbFormat, RandomizedRoundTrip) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const TuneDb db = randomized_db(4, seed);
    const std::string text = db.serialize();
    TuneDb back;
    std::string error;
    ASSERT_TRUE(TuneDb::deserialize(text, &back, &error)) << error;
    EXPECT_EQ(back.serialize(), text) << "seed " << seed;
    EXPECT_EQ(back.record_count(), 4u);
    EXPECT_EQ(back.entry_count(), 8u);
  }
}

TEST(TuneDbFormat, ReingestPreservesStampOrderAcrossReload) {
  TuneDb db = randomized_db(3, 9);
  const std::string text = db.serialize();
  TuneDb back;
  std::string error;
  ASSERT_TRUE(TuneDb::deserialize(text, &back, &error)) << error;
  // gc after a reload keeps the most recently ingested records — the
  // stamp survives the round trip.
  EXPECT_EQ(back.gc(1), 2);
  ASSERT_EQ(back.record_count(), 1u);
  EXPECT_NE(back.find("fake2.4x4.numa1"), nullptr);
}

TEST(TuneDbFormat, RejectsCorruptInput) {
  TuneDb out;
  std::string error;
  EXPECT_FALSE(TuneDb::deserialize("not a tunedb\n", &out, &error));
  EXPECT_FALSE(error.empty());

  const std::string good = randomized_db(1, 3).serialize();

  // Truncated: drop the final "end".
  std::string truncated = good.substr(0, good.rfind("end"));
  error.clear();
  EXPECT_FALSE(TuneDb::deserialize(truncated, &out, &error));
  EXPECT_NE(error.find("line"), std::string::npos) << error;

  // A mangled entry line inside an otherwise-valid block.
  std::string mangled = good;
  const std::string::size_type at = mangled.find("entry ");
  ASSERT_NE(at, std::string::npos);
  mangled.replace(at, 6, "entry! ");
  error.clear();
  EXPECT_FALSE(TuneDb::deserialize(mangled, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TuneDbFormat, RejectsNewerVersionLoudly) {
  std::string text = randomized_db(1, 5).serialize();
  const std::string::size_type at = text.find("version 1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 9, "version 2");
  TuneDb out;
  std::string error;
  EXPECT_FALSE(TuneDb::deserialize(text, &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(TuneDbFormat, FileRoundTripAndMissingFile) {
  const TuneDb db = randomized_db(2, 11);
  const std::string path = ::testing::TempDir() + "tunedb_test.db";
  ASSERT_TRUE(db.save(path));
  const std::optional<TuneDb> loaded = TuneDb::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->serialize(), db.serialize());
  EXPECT_FALSE(TuneDb::load(path + ".does-not-exist").has_value());
  std::remove(path.c_str());
}

// --- invalidation and gc -------------------------------------------------

TEST(TuneDb, InvalidatePerKindAndWholeRecord) {
  TuneDb db = randomized_db(2, 13);
  EXPECT_EQ(db.invalidate("fake0.2x4.numa1", CollKind::Bcast), 1);
  const TuneDb::Record* rec = db.find("fake0.2x4.numa1");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->entries.size(), 1u);  // the allreduce entry survives
  EXPECT_EQ(db.invalidate("fake0.2x4.numa1"), 1);
  EXPECT_EQ(db.find("fake0.2x4.numa1"), nullptr);
  EXPECT_EQ(db.invalidate("no-such-machine"), 0);
  EXPECT_EQ(db.record_count(), 1u);
}

TEST(TuneDb, GcKeepsMostRecentlyIngested) {
  TuneDb db = randomized_db(5, 17);
  EXPECT_EQ(db.gc(2), 3);
  EXPECT_EQ(db.record_count(), 2u);
  EXPECT_NE(db.find("fake3.5x4.numa1"), nullptr);
  EXPECT_NE(db.find("fake4.6x4.numa1"), nullptr);
  EXPECT_EQ(db.gc(2), 0);  // already at the cap
}

// --- warm-start tuning ---------------------------------------------------

struct TuneHarness {
  explicit TuneHarness(machine::MachineProfile profile)
      : world(std::move(profile)),
        rt(world),
        mods(world, rt),
        han(world, rt, mods) {}
  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
  core::HanModule han;
};

SearchSpace small_space() {
  SearchSpace s;
  s.fs_sizes = {64 << 10, 1 << 20};
  s.adapt_algs = {Algorithm::Chain};
  s.adapt_inter_segments = {64 << 10};
  return s;
}

TunerOptions small_options() {
  TunerOptions o;
  o.message_sizes = {64 << 10, 4 << 20};
  o.kinds = {CollKind::Bcast, CollKind::Allreduce};
  return o;
}

TEST(WarmTune, ColdPassEqualsPlainTuneThenWarmPassIsFree) {
  const TunerOptions opts = small_options();

  TuneHarness plain(machine::make_aries(2, 2));
  Tuner plain_tuner(plain.world, plain.han, plain.world.world_comm(),
                    small_space());
  const TuneReport cold = plain_tuner.tune(opts);

  TuneDb db;
  TuneHarness first(machine::make_aries(2, 2));
  Tuner first_tuner(first.world, first.han, first.world.world_comm(),
                    small_space());
  const WarmStartReport pass1 = warm_tune(db, first_tuner, opts);
  EXPECT_TRUE(pass1.cold);
  EXPECT_EQ(pass1.reused, 0);
  EXPECT_EQ(pass1.retuned, 4);  // 2 kinds x 2 sizes
  EXPECT_EQ(pass1.table.serialize(), cold.table.serialize());
  EXPECT_DOUBLE_EQ(pass1.tuning_cost, cold.tuning_cost);

  // Second pass on an identical machine: everything reused, zero
  // simulated benchmark cost, and the DB is left byte-identical.
  const std::string db_before = db.serialize();
  TuneHarness second(machine::make_aries(2, 2));
  Tuner second_tuner(second.world, second.han, second.world.world_comm(),
                     small_space());
  const WarmStartReport pass2 = warm_tune(db, second_tuner, opts);
  EXPECT_FALSE(pass2.cold);
  EXPECT_EQ(pass2.reused, 4);
  EXPECT_EQ(pass2.retuned, 0);
  EXPECT_DOUBLE_EQ(pass2.tuning_cost, 0.0);
  EXPECT_TRUE(pass2.retuned_kinds.empty());
  EXPECT_EQ(pass2.table.serialize(), cold.table.serialize());
  EXPECT_EQ(db.serialize(), db_before);
}

TEST(WarmTune, CurvePerturbationForcesAFullRetuneThatMatchesCold) {
  const TunerOptions opts = small_options();

  TuneDb db;
  TuneHarness base(machine::make_aries(2, 2));
  Tuner base_tuner(base.world, base.han, base.world.world_comm(),
                   small_space());
  warm_tune(db, base_tuner, opts);

  // The perturbation lands at >= 2MB, so the 4MB buckets of every kind go
  // stale; a kind re-tunes whole, so both kinds pay again.
  machine::MachineProfile perturbed = machine::make_aries(2, 2);
  machine::scale_net_efficiency(perturbed, 0.8, 2 << 20);

  TuneHarness plain(perturbed);
  Tuner plain_tuner(plain.world, plain.han, plain.world.world_comm(),
                    small_space());
  const TuneReport cold = plain_tuner.tune(opts);

  TuneHarness warm(perturbed);
  Tuner warm_tuner(warm.world, warm.han, warm.world.world_comm(),
                   small_space());
  const WarmStartReport rep = warm_tune(db, warm_tuner, opts);
  EXPECT_FALSE(rep.cold);
  EXPECT_EQ(rep.reused, 0);
  EXPECT_EQ(rep.retuned, 4);
  EXPECT_EQ(rep.retuned_kinds,
            (std::vector<std::string>{"bcast", "allreduce"}));
  EXPECT_EQ(rep.table.serialize(), cold.table.serialize());
  EXPECT_DOUBLE_EQ(rep.tuning_cost, cold.tuning_cost);

  // The DB now stores the perturbed machine's record; both signatures map
  // to the same topo key but only the new one is fresh.
  TuneHarness again(perturbed);
  Tuner again_tuner(again.world, again.han, again.world.world_comm(),
                    small_space());
  const WarmStartReport rep2 = warm_tune(db, again_tuner, opts);
  EXPECT_EQ(rep2.retuned, 0);
  EXPECT_EQ(rep2.reused, 4);
}

TEST(WarmTune, PerturbationBelowTunedSizesReusesEverything) {
  TunerOptions opts = small_options();
  opts.message_sizes = {64 << 10};  // band 16 only

  TuneDb db;
  TuneHarness base(machine::make_aries(2, 2));
  Tuner base_tuner(base.world, base.han, base.world.world_comm(),
                   small_space());
  warm_tune(db, base_tuner, opts);

  // A large-message-only curve change leaves band 16 untouched: the
  // signature still matches for every tuned bucket, nothing re-tunes.
  machine::MachineProfile perturbed = machine::make_aries(2, 2);
  machine::scale_net_efficiency(perturbed, 0.8, 2 << 20);
  TuneHarness warm(perturbed);
  Tuner warm_tuner(warm.world, warm.han, warm.world.world_comm(),
                   small_space());
  const WarmStartReport rep = warm_tune(db, warm_tuner, opts);
  EXPECT_EQ(rep.retuned, 0);
  EXPECT_EQ(rep.reused, 2);  // 2 kinds x 1 size
  EXPECT_DOUBLE_EQ(rep.tuning_cost, 0.0);
}

TEST(WarmTune, InvalidatedKindRetunesAlone) {
  const TunerOptions opts = small_options();

  TuneDb db;
  TuneHarness base(machine::make_aries(2, 2));
  Tuner base_tuner(base.world, base.han, base.world.world_comm(),
                   small_space());
  const WarmStartReport cold = warm_tune(db, base_tuner, opts);

  const std::string key = signature_of(base.world.profile()).key();
  EXPECT_EQ(db.invalidate(key, CollKind::Bcast), 2);

  TuneHarness warm(machine::make_aries(2, 2));
  Tuner warm_tuner(warm.world, warm.han, warm.world.world_comm(),
                   small_space());
  const WarmStartReport rep = warm_tune(db, warm_tuner, opts);
  EXPECT_EQ(rep.retuned, 2);  // bcast's two buckets
  EXPECT_EQ(rep.reused, 2);   // allreduce served from the DB
  EXPECT_EQ(rep.retuned_kinds, std::vector<std::string>{"bcast"});
  EXPECT_LT(rep.tuning_cost, cold.tuning_cost);
  EXPECT_EQ(rep.table.serialize(), cold.table.serialize());
}

}  // namespace
}  // namespace han::tune

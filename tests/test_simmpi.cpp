// Unit + integration tests for the simulated MPI substrate: datatypes,
// communicators, tag-matched P2P (eager + rendezvous), local primitives.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "simmpi/world.hpp"

namespace han::mpi {
namespace {

using sim::CoTask;

SimWorld::Options data_opts() {
  SimWorld::Options o;
  o.data_mode = true;
  return o;
}

machine::MachineProfile tiny(int nodes = 2, int ppn = 2) {
  return machine::make_aries(nodes, ppn);
}

// --- datatype -----------------------------------------------------------

TEST(Datatype, Sizes) {
  EXPECT_EQ(type_size(Datatype::Byte), 1u);
  EXPECT_EQ(type_size(Datatype::Int32), 4u);
  EXPECT_EQ(type_size(Datatype::Int64), 8u);
  EXPECT_EQ(type_size(Datatype::Float), 4u);
  EXPECT_EQ(type_size(Datatype::Double), 8u);
}

TEST(Datatype, OpValidity) {
  EXPECT_TRUE(op_valid_for(ReduceOp::Sum, Datatype::Double));
  EXPECT_TRUE(op_valid_for(ReduceOp::Band, Datatype::Int32));
  EXPECT_FALSE(op_valid_for(ReduceOp::Band, Datatype::Float));
  EXPECT_FALSE(op_valid_for(ReduceOp::Bxor, Datatype::Double));
}

template <typename T>
std::vector<T> reduce_vec(ReduceOp op, Datatype t, std::vector<T> acc,
                          const std::vector<T>& in) {
  apply_reduce(op, t, reinterpret_cast<std::byte*>(acc.data()),
               reinterpret_cast<const std::byte*>(in.data()), acc.size());
  return acc;
}

TEST(Datatype, ReduceSumInt32) {
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::Sum, Datatype::Int32, {1, 2, 3},
                                     {10, 20, 30}),
            (std::vector<std::int32_t>{11, 22, 33}));
}

TEST(Datatype, ReduceMaxDouble) {
  EXPECT_EQ(reduce_vec<double>(ReduceOp::Max, Datatype::Double, {1.0, 9.0},
                               {5.0, 2.0}),
            (std::vector<double>{5.0, 9.0}));
}

TEST(Datatype, ReduceMinProd) {
  EXPECT_EQ(reduce_vec<std::int64_t>(ReduceOp::Min, Datatype::Int64, {4, 1},
                                     {2, 8}),
            (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(reduce_vec<float>(ReduceOp::Prod, Datatype::Float, {2.f, 3.f},
                              {4.f, 5.f}),
            (std::vector<float>{8.f, 15.f}));
}

TEST(Datatype, ReduceBitwise) {
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::Band, Datatype::Int32, {0b1100},
                                     {0b1010}),
            (std::vector<std::int32_t>{0b1000}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::Bor, Datatype::Int32, {0b1100},
                                     {0b1010}),
            (std::vector<std::int32_t>{0b1110}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::Bxor, Datatype::Int32, {0b1100},
                                     {0b1010}),
            (std::vector<std::int32_t>{0b0110}));
}

// --- communicators --------------------------------------------------------

TEST(CommTest, WorldCommCoversAllRanks) {
  SimWorld w(tiny(2, 3));
  Comm& world = w.world_comm();
  EXPECT_EQ(world.size(), 6);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(world.world_rank(r), r);
    EXPECT_EQ(world.comm_rank_of_world(r), r);
  }
}

TEST(CommTest, RankPlacement) {
  SimWorld w(tiny(2, 3));
  EXPECT_EQ(w.rank(0).node, 0);
  EXPECT_EQ(w.rank(2).node, 0);
  EXPECT_EQ(w.rank(3).node, 1);
  EXPECT_EQ(w.rank(3).local_rank, 0);
  EXPECT_EQ(w.rank(5).local_rank, 2);
}

TEST(CommTest, SplitByParity) {
  SimWorld w(tiny(2, 2));
  std::vector<int> color{0, 1, 0, 1};
  std::vector<int> key{0, 0, 1, 1};
  auto comms = w.comm_split(w.world_comm(), color, key);
  ASSERT_EQ(comms.size(), 4u);
  EXPECT_EQ(comms[0], comms[2]);
  EXPECT_EQ(comms[1], comms[3]);
  EXPECT_NE(comms[0], comms[1]);
  EXPECT_EQ(comms[0]->size(), 2);
  EXPECT_EQ(comms[0]->world_rank(0), 0);
  EXPECT_EQ(comms[0]->world_rank(1), 2);
  EXPECT_NE(comms[0]->context(), comms[1]->context());
}

TEST(CommTest, SplitKeyOrdersRanks) {
  SimWorld w(tiny(1, 4));
  std::vector<int> color{0, 0, 0, 0};
  std::vector<int> key{3, 2, 1, 0};  // reverse order
  auto comms = w.comm_split(w.world_comm(), color, key);
  EXPECT_EQ(comms[0]->world_rank(0), 3);
  EXPECT_EQ(comms[0]->world_rank(3), 0);
}

TEST(CommTest, SplitUndefinedColorYieldsNull) {
  SimWorld w(tiny(1, 4));
  std::vector<int> color{0, -1, 0, -1};
  std::vector<int> key{0, 0, 0, 0};
  auto comms = w.comm_split(w.world_comm(), color, key);
  EXPECT_NE(comms[0], nullptr);
  EXPECT_EQ(comms[1], nullptr);
  EXPECT_EQ(comms[0]->size(), 2);
}

TEST(CommTest, SplitSharedGroupsByNode) {
  SimWorld w(tiny(3, 4));
  auto comms = w.comm_split_shared(w.world_comm());
  for (int r = 0; r < 12; ++r) {
    EXPECT_EQ(comms[r]->size(), 4);
    EXPECT_EQ(comms[r], comms[(r / 4) * 4]);  // same comm within node
    EXPECT_EQ(comms[r]->comm_rank_of_world(r), r % 4);
  }
  EXPECT_NE(comms[0], comms[4]);
}

// --- P2P ------------------------------------------------------------------

CoTask sender_prog(SimWorld& w, int dst, BufView buf, Tag tag) {
  Request r = w.isend(w.world_comm(), 0, dst, tag, buf);
  co_await *r;
}

CoTask receiver_prog(SimWorld& w, int me, int src, BufView buf, Tag tag,
                     double* done_at) {
  Request r = w.irecv(w.world_comm(), me, src, tag, buf);
  co_await *r;
  if (done_at != nullptr) *done_at = w.now();
}

TEST(P2p, EagerDataArrives) {
  SimWorld w(tiny(), data_opts());
  std::vector<std::int32_t> src(16);
  std::iota(src.begin(), src.end(), 100);
  std::vector<std::int32_t> dst(16, 0);

  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return sender_prog(w, 3, BufView::of(src, Datatype::Int32), 7);
    }
    if (rank.world_rank == 3) {
      return receiver_prog(w, 3, 0, BufView::of(dst, Datatype::Int32), 7,
                           nullptr);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_EQ(src, dst);
}

TEST(P2p, RendezvousDataArrives) {
  SimWorld w(tiny(), data_opts());
  std::vector<std::int32_t> src(64 << 10, 0);  // 256KB > eager limit
  std::iota(src.begin(), src.end(), 1);
  std::vector<std::int32_t> dst(64 << 10, 0);

  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return sender_prog(w, 2, BufView::of(src, Datatype::Int32), 9);
    }
    if (rank.world_rank == 2) {
      return receiver_prog(w, 2, 0, BufView::of(dst, Datatype::Int32), 9,
                           nullptr);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_EQ(src, dst);
}

TEST(P2p, IntraNodeFasterThanInter) {
  const std::size_t bytes = 1 << 20;
  double intra_time = 0.0, inter_time = 0.0;
  {
    SimWorld w(tiny());
    double done = 0.0;
    w.run([&](Rank& rank) -> CoTask {
      if (rank.world_rank == 0) {
        return sender_prog(w, 1, BufView::timing_only(bytes), 1);
      }
      if (rank.world_rank == 1) {  // same node (ppn=2)
        return receiver_prog(w, 1, 0, BufView::timing_only(bytes), 1, &done);
      }
      return [](SimWorld&) -> CoTask { co_return; }(w);
    });
    intra_time = done;
  }
  {
    SimWorld w(tiny());
    double done = 0.0;
    w.run([&](Rank& rank) -> CoTask {
      if (rank.world_rank == 0) {
        return sender_prog(w, 2, BufView::timing_only(bytes), 1);
      }
      if (rank.world_rank == 2) {  // other node
        return receiver_prog(w, 2, 0, BufView::timing_only(bytes), 1, &done);
      }
      return [](SimWorld&) -> CoTask { co_return; }(w);
    });
    inter_time = done;
  }
  EXPECT_GT(intra_time, 0.0);
  EXPECT_GT(inter_time, 0.0);
  // aries: effective intra pair bandwidth 3 GB/s beats NIC 10 GB/s * 0.45
  // dip? For 1MB: eff ~0.72 → 7.2GB/s inter vs 3GB/s intra; distances are
  // close — assert only that both are sane and latency ordering holds for
  // tiny messages instead.
  SUCCEED();
}

TEST(P2p, SmallMessageIntraLatencyLower) {
  auto time_one = [&](int dst) {
    SimWorld w(tiny());
    double done = 0.0;
    w.run([&](Rank& rank) -> CoTask {
      if (rank.world_rank == 0) {
        return sender_prog(w, dst, BufView::timing_only(8), 1);
      }
      if (rank.world_rank == dst) {
        return receiver_prog(w, dst, 0, BufView::timing_only(8), 1, &done);
      }
      return [](SimWorld&) -> CoTask { co_return; }(w);
    });
    return done;
  };
  EXPECT_LT(time_one(1), time_one(2));
}

TEST(P2p, UnexpectedMessageMatchedLater) {
  SimWorld w(tiny(), data_opts());
  std::vector<std::int32_t> src{42};
  std::vector<std::int32_t> dst{0};

  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return sender_prog(w, 1, BufView::of(src, Datatype::Int32), 5);
    }
    if (rank.world_rank == 1) {
      return [](SimWorld& w13, std::vector<std::int32_t>& dst3) -> CoTask {
        // Let the eager message arrive unexpected first.
        co_await sim::Delay{w13.engine(), 1e-3};
        Request r = w13.irecv(w13.world_comm(), 1, 0,
                            5, BufView::of(dst3, Datatype::Int32));
        co_await *r;
      }(w, dst);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_EQ(dst[0], 42);
}

TEST(P2p, TagsKeepMessagesApart) {
  SimWorld w(tiny(), data_opts());
  std::vector<std::int32_t> a{1}, b{2};
  std::vector<std::int32_t> ra{0}, rb{0};

  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return [](SimWorld& w12, std::vector<std::int32_t>& a3,
                std::vector<std::int32_t>& b3) -> CoTask {
        Request r1 = w12.isend(w12.world_comm(), 0, 1, /*tag=*/10,
                             BufView::of(a3, Datatype::Int32));
        Request r2 = w12.isend(w12.world_comm(), 0, 1, /*tag=*/20,
                             BufView::of(b3, Datatype::Int32));
        co_await *r1;
        co_await *r2;
      }(w, a, b);
    }
    if (rank.world_rank == 1) {
      return [](SimWorld& w11, std::vector<std::int32_t>& ra3,
                std::vector<std::int32_t>& rb3) -> CoTask {
        // Post in reverse tag order: matching must be by tag, not arrival.
        Request r2 = w11.irecv(w11.world_comm(), 1, 0, /*tag=*/20,
                             BufView::of(rb3, Datatype::Int32));
        Request r1 = w11.irecv(w11.world_comm(), 1, 0, /*tag=*/10,
                             BufView::of(ra3, Datatype::Int32));
        co_await *r1;
        co_await *r2;
      }(w, ra, rb);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_EQ(ra[0], 1);
  EXPECT_EQ(rb[0], 2);
}

TEST(P2p, SelfSendWorks) {
  SimWorld w(tiny(), data_opts());
  std::vector<std::int32_t> src{7}, dst{0};
  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return [](SimWorld& w10, std::vector<std::int32_t>& src2,
                std::vector<std::int32_t>& dst2) -> CoTask {
        Request rr = w10.irecv(w10.world_comm(), 0, 0, 3,
                             BufView::of(dst2, Datatype::Int32));
        Request sr = w10.isend(w10.world_comm(), 0, 0, 3,
                             BufView::of(src2, Datatype::Int32));
        co_await *sr;
        co_await *rr;
      }(w, src, dst);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_EQ(dst[0], 7);
}

TEST(P2p, ContextsIsolateTraffic) {
  SimWorld w(tiny(), data_opts());
  const int ctx2 = w.next_context();
  std::vector<std::int32_t> a{11}, b{22};
  std::vector<std::int32_t> ra{0}, rb{0};
  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return [](SimWorld& w9, int ctx23, std::vector<std::int32_t>& a2,
                std::vector<std::int32_t>& b2) -> CoTask {
        Request r1 = w9.isend(w9.world_comm(), 0, 1, 1,
                             BufView::of(a2, Datatype::Int32));
        Request r2 = w9.isend_ctx(w9.world_comm(), ctx23, 0, 1, 1,
                                 BufView::of(b2, Datatype::Int32));
        co_await *r1;
        co_await *r2;
      }(w, ctx2, a, b);
    }
    if (rank.world_rank == 1) {
      return [](SimWorld& w8, int ctx22, std::vector<std::int32_t>& ra2,
                std::vector<std::int32_t>& rb2) -> CoTask {
        Request r2 = w8.irecv_ctx(w8.world_comm(), ctx22, 1, 0, 1,
                                 BufView::of(rb2, Datatype::Int32));
        Request r1 = w8.irecv(w8.world_comm(), 1, 0, 1,
                             BufView::of(ra2, Datatype::Int32));
        co_await *r1;
        co_await *r2;
      }(w, ctx2, ra, rb);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_EQ(ra[0], 11);
  EXPECT_EQ(rb[0], 22);
}

TEST(P2p, ManyToOneCongestionSlowsDown) {
  // 4 simultaneous rendezvous senders into one receiver NIC take longer than
  // one — the congestion-at-a-process effect the paper cites.
  auto run_senders = [&](int nsenders) {
    SimWorld w(machine::make_aries(8, 1));
    const std::size_t bytes = 4 << 20;
    double last_done = 0.0;
    w.run([&](Rank& rank) -> CoTask {
      if (rank.world_rank == 0) {
        return [](SimWorld& w7, int nsenders2, double& last_done2,
                  std::size_t bytes3) -> CoTask {
          std::vector<Request> reqs;
          for (int s = 1; s <= nsenders2; ++s) {
            reqs.push_back(w7.irecv(w7.world_comm(), 0, s, s,
                                   BufView::timing_only(bytes3)));
          }
          co_await wait_all(w7.engine(), reqs);
          last_done2 = w7.now();
        }(w, nsenders, last_done, bytes);
      }
      if (rank.world_rank >= 1 && rank.world_rank <= nsenders) {
        return [](SimWorld& w6, int me, std::size_t bytes2) -> CoTask {
          Request r = w6.isend(w6.world_comm(), me, 0, me,
                              BufView::timing_only(bytes2));
          co_await *r;
        }(w, rank.world_rank, bytes);
      }
      return [](SimWorld&) -> CoTask { co_return; }(w);
    });
    return last_done;
  };
  const double one = run_senders(1);
  const double four = run_senders(4);
  EXPECT_GT(four, one * 2.5);  // NIC rx is shared: ~4x serialization
}

// --- local primitives -------------------------------------------------

CoTask await_req(Request r, double* done, SimWorld& w) {
  co_await *r;
  *done = w.now();
}

TEST(LocalPrimitives, CopyFlowTakesBusTime) {
  SimWorld w(tiny());
  double done = 0.0;
  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return await_req(w.copy_flow(0, 6ull << 30 / 2), &done, w);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_GT(done, 0.0);
}

TEST(LocalPrimitives, ReduceComputeAvxFaster) {
  auto run_reduce = [&](bool avx) {
    SimWorld w(tiny());
    double done = 0.0;
    w.run([&](Rank& rank) -> CoTask {
      if (rank.world_rank == 0) {
        return await_req(w.reduce_compute(0, 64 << 20, avx), &done, w);
      }
      return [](SimWorld&) -> CoTask { co_return; }(w);
    });
    return done;
  };
  EXPECT_LT(run_reduce(true), run_reduce(false));
}

TEST(LocalPrimitives, CpuSerializesCompute) {
  SimWorld w(tiny());
  double done = 0.0;
  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return [](SimWorld& w5, double& done3) -> CoTask {
        Request a = w5.compute(0, 1e-3);
        Request b = w5.compute(0, 1e-3);
        co_await *a;
        co_await *b;
        done3 = w5.now();
      }(w, done);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_NEAR(done, 2e-3, 1e-9);
}

TEST(SyncDomainTest, AllPartiesRendezvous) {
  SimWorld w(tiny(1, 4));
  std::vector<double> resumed(4, -1.0);
  w.run([&](Rank& rank) -> CoTask {
    return [](SimWorld& w4, int me, std::vector<double>& resumed2) -> CoTask {
      // Stagger arrivals; everyone resumes at the last arrival.
      co_await sim::Delay{w4.engine(), 1e-4 * me};
      co_await *w4.sync();
      resumed2[me] = w4.now();
    }(w, rank.world_rank, resumed);
  });
  for (int r = 0; r < 4; ++r) EXPECT_NEAR(resumed[r], 3e-4, 1e-9);
}

TEST(SyncDomainTest, MultipleRounds) {
  SimWorld w(tiny(1, 2));
  int rounds_done = 0;
  w.run([&](Rank& rank) -> CoTask {
    return [](SimWorld& w3, int me, int& rounds) -> CoTask {
      for (int i = 0; i < 5; ++i) {
        co_await *w3.sync();
        if (me == 0) ++rounds;
      }
    }(w, rank.world_rank, rounds_done);
  });
  EXPECT_EQ(rounds_done, 5);
}

TEST(WaitAllTest, EmptySetCompletesImmediately) {
  SimWorld w(tiny(1, 2));
  bool done = false;
  w.run([&](Rank& rank) -> CoTask {
    if (rank.world_rank == 0) {
      return [](SimWorld& w2, bool& done2) -> CoTask {
        co_await wait_all(w2.engine(), {});
        done2 = true;
      }(w, done);
    }
    return [](SimWorld&) -> CoTask { co_return; }(w);
  });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace han::mpi

// Data-mode correctness of the vendor comparator stacks: every stack's
// Bcast/Allreduce must move/reduce real payloads correctly (parameterized
// across stacks, shapes, sizes — including the paths that trigger vendor
// internals: the SALaR segmented ring, the solo-threshold switch, the
// MVAPICH2 flat bcast).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "coll_test_util.hpp"
#include "vendor/stack.hpp"

namespace han::vendor {
namespace {

using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::expected_reduce;
using test::pattern_vec;

struct StackCase {
  const char* stack;
  int nodes, ppn;
  std::size_t count;  // int32 elements
  int root;
};

class StackBcastData : public ::testing::TestWithParam<StackCase> {};

TEST_P(StackBcastData, PayloadReachesEveryRank) {
  const StackCase& c = GetParam();
  auto stack = make_stack(c.stack, machine::make_opath(c.nodes, c.ppn),
                          /*data_mode=*/true);
  const int n = stack->world().world_size();
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == c.root ? pattern_vec(c.root, c.count)
                          : std::vector<std::int32_t>(c.count, -1);
  }
  stack->world().run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](MpiStack& s, std::vector<std::vector<std::int32_t>>& bufs2,
              int root, int me) -> sim::CoTask {
      mpi::Request r = s.ibcast(me, root,
                                BufView::of(bufs2[me], Datatype::Int32),
                                Datatype::Int32);
      co_await *r;
    }(*stack, bufs, c.root, rank.world_rank);
  });
  const auto expect = pattern_vec(c.root, c.count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, StackBcastData,
    ::testing::Values(
        StackCase{"ompi", 3, 4, 2000, 0},
        StackCase{"ompi", 2, 2, 300000, 1},  // large → chain path
        StackCase{"han", 3, 4, 2000, 0},
        StackCase{"han", 3, 4, 300000, 5},
        StackCase{"cray", 3, 4, 2000, 0},
        StackCase{"cray", 2, 4, 300000, 2},  // large → chain + solo intra
        StackCase{"intel", 3, 4, 2000, 4},
        StackCase{"mvapich", 3, 4, 2000, 0},   // flat binomial path
        StackCase{"mvapich", 2, 4, 300000, 0}));

class StackAllreduceData : public ::testing::TestWithParam<StackCase> {};

TEST_P(StackAllreduceData, EveryRankHoldsSum) {
  const StackCase& c = GetParam();
  auto stack = make_stack(c.stack, machine::make_opath(c.nodes, c.ppn),
                          /*data_mode=*/true);
  const int n = stack->world().world_size();
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, c.count);
    recv[r].assign(c.count, -99);
  }
  stack->world().run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](MpiStack& s, std::vector<std::vector<std::int32_t>>& send4,
              std::vector<std::vector<std::int32_t>>& recv4,
              int me) -> sim::CoTask {
      mpi::Request r = s.iallreduce(me, BufView::of(send4[me], Datatype::Int32),
                                    BufView::of(recv4[me], Datatype::Int32),
                                    Datatype::Int32, ReduceOp::Sum);
      co_await *r;
    }(*stack, send, recv, rank.world_rank);
  });
  const auto expect = expected_reduce(ReduceOp::Sum, n, c.count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], expect) << "rank " << r;
  // MPI forbids touching send buffers.
  for (int r = 0; r < n; ++r) EXPECT_EQ(send[r], pattern_vec(r, c.count));
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, StackAllreduceData,
    ::testing::Values(
        StackCase{"ompi", 3, 4, 2000, 0},
        StackCase{"ompi", 2, 2, 300000, 0},    // ring path (>=1MB)
        StackCase{"han", 3, 4, 2000, 0},
        StackCase{"han", 3, 4, 300000, 0},     // pipelined 4-stage path
        StackCase{"cray", 3, 4, 2000, 0},      // recdoub inter path
        StackCase{"cray", 5, 4, 600000, 0},    // ring + SALaR segments
        StackCase{"intel", 3, 4, 2000, 0},
        StackCase{"intel", 5, 2, 1200000, 0},  // ring path (>=4MB)
        StackCase{"mvapich", 3, 4, 2000, 0},
        StackCase{"mvapich", 5, 4, 1200000, 0}));  // segmented SALaR path

TEST(StackSingleNode, AllStacksHandleOneNode) {
  for (const char* name : {"ompi", "han", "cray", "intel", "mvapich"}) {
    auto stack = make_stack(name, machine::make_opath(1, 4), true);
    std::vector<std::vector<std::int32_t>> send(4), recv(4);
    for (int r = 0; r < 4; ++r) {
      send[r] = pattern_vec(r, 100);
      recv[r].assign(100, 0);
    }
    stack->world().run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](MpiStack& s, std::vector<std::vector<std::int32_t>>& send3,
                std::vector<std::vector<std::int32_t>>& recv3,
                int me) -> sim::CoTask {
        mpi::Request r = s.iallreduce(
            me, BufView::of(send3[me], Datatype::Int32),
            BufView::of(recv3[me], Datatype::Int32), Datatype::Int32,
            ReduceOp::Max);
        co_await *r;
      }(*stack, send, recv, rank.world_rank);
    });
    const auto expect = expected_reduce(ReduceOp::Max, 4, 100);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(recv[r], expect) << name << " rank " << r;
    }
  }
}

TEST(StackSingleRankPerNode, NoIntraLevel) {
  for (const char* name : {"han", "cray", "mvapich"}) {
    auto stack = make_stack(name, machine::make_opath(4, 1), true);
    std::vector<std::vector<std::int32_t>> send(4), recv(4);
    for (int r = 0; r < 4; ++r) {
      send[r] = pattern_vec(r, 64);
      recv[r].assign(64, 0);
    }
    stack->world().run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](MpiStack& s, std::vector<std::vector<std::int32_t>>& send2,
                std::vector<std::vector<std::int32_t>>& recv2,
                int me) -> sim::CoTask {
        mpi::Request r = s.iallreduce(
            me, BufView::of(send2[me], Datatype::Int32),
            BufView::of(recv2[me], Datatype::Int32), Datatype::Int32,
            ReduceOp::Sum);
        co_await *r;
      }(*stack, send, recv, rank.world_rank);
    });
    const auto expect = expected_reduce(ReduceOp::Sum, 4, 64);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(recv[r], expect) << name << " rank " << r;
    }
  }
}

}  // namespace
}  // namespace han::vendor

// Unit + property tests for the max-min fair fluid-flow network.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "flownet/flownet.hpp"
#include "simbase/rng.hpp"

namespace han::net {
namespace {

using sim::Engine;

TEST(FlowNet, SingleFlowRunsAtCapacity) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("link", 100.0);
  double done_at = -1.0;
  const ResourceId path[] = {r};
  fn.start_flow(path, 500.0, FlowNet::no_cap(), [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(FlowNet, RateCapLimitsFlow) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("link", 100.0);
  double done_at = -1.0;
  const ResourceId path[] = {r};
  fn.start_flow(path, 500.0, 50.0, [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST(FlowNet, TwoFlowsShareEqually) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("link", 100.0);
  const ResourceId path[] = {r};
  std::vector<double> done;
  fn.start_flow(path, 500.0, FlowNet::no_cap(), [&] { done.push_back(e.now()); });
  fn.start_flow(path, 500.0, FlowNet::no_cap(), [&] { done.push_back(e.now()); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  // Both run at 50 until both finish at t=10.
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[1], 10.0, 1e-9);
}

TEST(FlowNet, ShortFlowReleasesBandwidth) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("link", 100.0);
  const ResourceId path[] = {r};
  double long_done = -1.0, short_done = -1.0;
  fn.start_flow(path, 1000.0, FlowNet::no_cap(), [&] { long_done = e.now(); });
  fn.start_flow(path, 100.0, FlowNet::no_cap(), [&] { short_done = e.now(); });
  e.run();
  // Shared at 50/50 until the short one finishes at t=2 (100B at 50 B/s),
  // then the long one gets 100: remaining 900 after t=2 → done at 11.
  EXPECT_NEAR(short_done, 2.0, 1e-9);
  EXPECT_NEAR(long_done, 11.0, 1e-9);
}

TEST(FlowNet, CappedFlowLeavesHeadroomToOthers) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("link", 100.0);
  const ResourceId path[] = {r};
  double capped_done = -1.0, free_done = -1.0;
  fn.start_flow(path, 100.0, 10.0, [&] { capped_done = e.now(); });
  fn.start_flow(path, 900.0, FlowNet::no_cap(), [&] { free_done = e.now(); });
  e.run();
  // Max-min: capped flow takes 10, the other gets 90.
  EXPECT_NEAR(capped_done, 10.0, 1e-9);
  EXPECT_NEAR(free_done, 10.0, 1e-9);
}

TEST(FlowNet, MultiResourceBottleneck) {
  Engine e;
  FlowNet fn(e);
  const ResourceId wide = fn.add_resource("wide", 100.0);
  const ResourceId narrow = fn.add_resource("narrow", 10.0);
  const ResourceId path[] = {wide, narrow};
  double done = -1.0;
  fn.start_flow(path, 100.0, FlowNet::no_cap(), [&] { done = e.now(); });
  e.run();
  EXPECT_NEAR(done, 10.0, 1e-9);
}

TEST(FlowNet, CrossTrafficOnlyStealsWhatItNeeds) {
  Engine e;
  FlowNet fn(e);
  // Flow A: narrow(10) + shared(100). Flow B: shared(100) only.
  // Max-min: A bottlenecked at 10 on narrow; B gets the remaining 90.
  const ResourceId narrow = fn.add_resource("narrow", 10.0);
  const ResourceId shared = fn.add_resource("shared", 100.0);
  const ResourceId path_a[] = {narrow, shared};
  const ResourceId path_b[] = {shared};
  double a_done = -1.0, b_done = -1.0;
  fn.start_flow(path_a, 100.0, FlowNet::no_cap(), [&] { a_done = e.now(); });
  fn.start_flow(path_b, 900.0, FlowNet::no_cap(), [&] { b_done = e.now(); });
  e.run();
  EXPECT_NEAR(a_done, 10.0, 1e-9);
  EXPECT_NEAR(b_done, 10.0, 1e-9);
}

TEST(FlowNet, ZeroByteFlowCompletesImmediately) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("link", 100.0);
  const ResourceId path[] = {r};
  double done = -1.0;
  fn.start_flow(path, 0.0, FlowNet::no_cap(), [&] { done = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(FlowNet, AbortRemovesFlow) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("link", 100.0);
  const ResourceId path[] = {r};
  bool aborted_fired = false;
  double other_done = -1.0;
  const FlowId f =
      fn.start_flow(path, 1000.0, FlowNet::no_cap(), [&] { aborted_fired = true; });
  fn.start_flow(path, 500.0, FlowNet::no_cap(), [&] { other_done = e.now(); });
  e.schedule_at(1.0, [&] { fn.abort_flow(f); });
  e.run();
  EXPECT_FALSE(aborted_fired);
  // Other flow: 50 B/s for 1s (450 left), then 100 B/s → done at 5.5.
  EXPECT_NEAR(other_done, 5.5, 1e-9);
}

TEST(FlowNet, SetCapacityRebalances) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("link", 100.0);
  const ResourceId path[] = {r};
  double done = -1.0;
  fn.start_flow(path, 1000.0, FlowNet::no_cap(), [&] { done = e.now(); });
  e.schedule_at(5.0, [&] { fn.set_capacity(r, 50.0); });
  e.run();
  // 500 bytes at 100 B/s, remaining 500 at 50 B/s → 5 + 10 = 15.
  EXPECT_NEAR(done, 15.0, 1e-9);
}

TEST(FlowNet, ResourceUsageNeverExceedsCapacity) {
  Engine e;
  FlowNet fn(e);
  sim::Rng rng(123);
  std::vector<ResourceId> resources;
  for (int i = 0; i < 8; ++i) {
    resources.push_back(fn.add_resource("r" + std::to_string(i),
                                        50.0 + 50.0 * rng.next_double()));
  }
  int completed = 0;
  // Random flow arrivals across random resource subsets.
  for (int i = 0; i < 60; ++i) {
    std::vector<ResourceId> path;
    const int k = 1 + static_cast<int>(rng.next_below(3));
    for (int j = 0; j < k; ++j) {
      path.push_back(resources[rng.next_below(resources.size())]);
    }
    const double bytes = 10.0 + 400.0 * rng.next_double();
    const double start = 5.0 * rng.next_double();
    e.schedule_at(start, [&fn, &e, &resources, &completed, path, bytes] {
      fn.start_flow(path, bytes, FlowNet::no_cap(), [&] { ++completed; });
      // Invariant: no resource oversubscribed right after rebalance.
      for (ResourceId r : resources) {
        EXPECT_LE(fn.resource_usage(r), fn.capacity(r) * (1.0 + 1e-9));
      }
      (void)e;
    });
  }
  e.run();
  EXPECT_EQ(completed, 60);
  EXPECT_EQ(fn.active_flows(), 0u);
}

// Property: max-min allocation — every flow is bottlenecked at some
// resource it crosses (saturated, and the flow's rate is >= every other
// flow's rate there) or at its own cap.
TEST(FlowNet, MaxMinBottleneckProperty) {
  Engine e;
  FlowNet fn(e);
  sim::Rng rng(7);
  std::vector<ResourceId> resources;
  for (int i = 0; i < 6; ++i) {
    resources.push_back(
        fn.add_resource("r" + std::to_string(i), 20.0 + 80.0 * rng.next_double()));
  }
  struct Live {
    FlowId id;
    std::vector<ResourceId> path;
    double cap;
  };
  std::vector<Live> live;
  for (int i = 0; i < 20; ++i) {
    std::vector<ResourceId> path;
    const int k = 1 + static_cast<int>(rng.next_below(3));
    for (int j = 0; j < k; ++j) {
      path.push_back(resources[rng.next_below(resources.size())]);
    }
    const double cap =
        rng.next_double() < 0.3 ? 5.0 + 10.0 * rng.next_double()
                                : FlowNet::no_cap();
    const FlowId id =
        fn.start_flow(path, 1e9, cap, [] {});  // long-lived flows
    live.push_back({id, path, cap});
  }
  // Rates are assigned by the batched rebalance at the current timestamp.
  e.run_until(0.0);

  for (const auto& f : live) {
    const double rate = fn.flow_rate(f.id);
    ASSERT_GT(rate, 0.0);
    bool bottlenecked = f.cap != FlowNet::no_cap() && rate >= f.cap * (1 - 1e-6);
    for (ResourceId r : f.path) {
      const bool saturated =
          fn.resource_usage(r) >= fn.capacity(r) * (1 - 1e-6);
      if (!saturated) continue;
      // On a saturated resource, max-min means nobody beats us unless capped.
      bool is_max = true;
      for (const auto& g : live) {
        if (g.id == f.id) continue;
        bool crosses = false;
        for (ResourceId gr : g.path) crosses |= (gr == r);
        if (crosses && fn.flow_rate(g.id) > rate * (1 + 1e-6)) is_max = false;
      }
      bottlenecked |= is_max;
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f.id << " rate " << rate;
  }
}


// --- slot-map regression suite ------------------------------------------

TEST(FlowNet, PoolRecyclesUnderChurn) {
  // Steady-state churn must recycle slots through the free list instead of
  // growing the slab: capacity is bounded by the peak live population.
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("lane", 1e9);
  const ResourceId path[] = {r};
  for (int round = 0; round < 200; ++round) {
    int done = 0;
    for (int i = 0; i < 8; ++i) {
      fn.start_flow(path, 1e6, FlowNet::no_cap(), [&done] { ++done; });
    }
    e.run();
    EXPECT_EQ(done, 8);
  }
  EXPECT_EQ(fn.active_flows(), 0u);
  EXPECT_LE(fn.flow_pool_capacity(), 8u);
}

TEST(FlowNet, StaleFlowIdInertAfterSlotReuse) {
  Engine e;
  FlowNet fn(e);
  const ResourceId r = fn.add_resource("lane", 1e9);
  const ResourceId path[] = {r};
  bool first_done = false;
  FlowId a = fn.start_flow(path, 1e6, FlowNet::no_cap(),
                           [&] { first_done = true; });
  fn.abort_flow(a);
  // The second flow recycles a's slot under a bumped generation tag.
  bool second_done = false;
  FlowId b = fn.start_flow(path, 1e6, FlowNet::no_cap(),
                           [&] { second_done = true; });
  EXPECT_EQ(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  EXPECT_NE(a, b);
  fn.abort_flow(a);             // stale handle: must not abort b
  EXPECT_EQ(fn.flow_rate(a), 0.0);
  e.run();
  EXPECT_FALSE(first_done);
  EXPECT_TRUE(second_done);
  EXPECT_EQ(fn.active_flows(), 0u);
}

TEST(FlowNet, ManyResourcePathSpillsAndCompletes) {
  // Paths wider than the SmallVec inline capacity (synthetic topologies)
  // must still sort/dedup and complete correctly through the spill path.
  Engine e;
  FlowNet fn(e);
  std::vector<ResourceId> path;
  for (int i = 0; i < 12; ++i) {
    path.push_back(fn.add_resource("r" + std::to_string(i), 1e9));
  }
  path.push_back(path[3]);  // duplicate must be dropped
  bool done = false;
  fn.start_flow(path, 1e9, FlowNet::no_cap(), [&] { done = true; });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);  // one full second at 1 GB/s
}

}  // namespace
}  // namespace han::net

// han::synth — spec grammar, canonical-shape equivalence, synthesis
// determinism, and the winner cache round trip (docs/SYNTHESIS.md).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "autotune/search.hpp"
#include "coll/registry.hpp"
#include "han/han.hpp"
#include "han/synth/schedule_builder.hpp"
#include "han/synth/synth.hpp"
#include "han/task/builders.hpp"
#include "han/verify/sweep.hpp"
#include "machine/machine.hpp"

namespace han {
namespace {

using coll::CollKind;
using core::HanConfig;
using mpi::BufView;
using mpi::Datatype;
using synth::SynthSpec;

struct SynthWorld {
  explicit SynthWorld(machine::MachineProfile profile)
      : world(std::move(profile)),
        rt(world),
        mods(world, rt),
        han(world, rt, mods) {}
  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
  core::HanModule han;
};

HanConfig base_cfg(std::size_t fs, int window) {
  HanConfig cfg;
  cfg.fs = fs;
  cfg.imod = "adapt";
  cfg.smod = "sm";
  cfg.ibalg = coll::Algorithm::Binary;
  cfg.iralg = coll::Algorithm::Binary;
  cfg.ibs = 32 << 10;
  cfg.irs = 32 << 10;
  cfg.window = window;
  return cfg;
}

/// Node-for-node graph equality (everything but the issue closures, which
/// are not comparable).
void expect_same_graph(const task::TaskGraph& a, const task::TaskGraph& b,
                       const std::string& label) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size()) << label;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const task::TaskNode& na = a.nodes[i];
    const task::TaskNode& nb = b.nodes[i];
    EXPECT_EQ(na.op, nb.op) << label << " node " << i;
    EXPECT_EQ(na.level, nb.level) << label << " node " << i;
    EXPECT_EQ(na.comm, nb.comm) << label << " node " << i;
    EXPECT_EQ(na.step, nb.step) << label << " node " << i;
    EXPECT_EQ(na.seg, nb.seg) << label << " node " << i;
    EXPECT_EQ(na.bytes, nb.bytes) << label << " node " << i;
    EXPECT_EQ(na.deps, nb.deps) << label << " node " << i;
  }
}

// --- spec grammar -----------------------------------------------------------

TEST(SynthSpecTest, IdParseRoundTripAcrossGrammar) {
  for (CollKind kind : {CollKind::Allreduce, CollKind::Bcast}) {
    const std::vector<SynthSpec> specs = synth::enumerate_specs(kind, 4);
    ASSERT_FALSE(specs.empty());
    for (const SynthSpec& spec : specs) {
      EXPECT_TRUE(spec.validate().empty()) << spec.id();
      SynthSpec back;
      ASSERT_TRUE(SynthSpec::parse(spec.id(), &back)) << spec.id();
      EXPECT_EQ(back, spec) << spec.id();
      EXPECT_EQ(back.id(), spec.id());
    }
  }
  EXPECT_TRUE(SynthSpec::canonical(CollKind::Allreduce).validate().empty());
  EXPECT_TRUE(SynthSpec::canonical(CollKind::Bcast).validate().empty());
}

TEST(SynthSpecTest, StripeTokenRoundTripAcrossGrammar) {
  // sf=1 is omitted from ids, so pre-rail ids are byte-identical.
  SynthSpec spec = SynthSpec::canonical(CollKind::Allreduce);
  EXPECT_EQ(spec.id().find(":r"), std::string::npos);
  spec.sf = 4;
  EXPECT_NE(spec.id().find(":r4:"), std::string::npos);
  SynthSpec back;
  ASSERT_TRUE(SynthSpec::parse(spec.id(), &back)) << spec.id();
  EXPECT_EQ(back, spec);

  // A multi-rail grammar enumerates striped specs, and every one
  // round-trips; a single-rail grammar never emits a stripe token even
  // when stripe_factors asks for one.
  synth::GeneratorOptions rail4;
  rail4.rails = 4;
  bool striped = false;
  for (const SynthSpec& s :
       synth::enumerate_specs(CollKind::Allreduce, 4, rail4)) {
    EXPECT_TRUE(s.validate().empty()) << s.id();
    SynthSpec b;
    ASSERT_TRUE(SynthSpec::parse(s.id(), &b)) << s.id();
    EXPECT_EQ(b.id(), s.id());
    striped = striped || s.sf > 1;
  }
  EXPECT_TRUE(striped);
  for (const SynthSpec& s : synth::enumerate_specs(CollKind::Bcast, 4)) {
    EXPECT_EQ(s.sf, 1) << s.id();
  }
}

TEST(SynthSpecTest, RejectsMalformedAndTruncatedIds) {
  const char* bad[] = {
      "",
      "ar1",
      "ar1:k1",
      "ar9:k1:sr0.ir1.ib2.sb3",     // unknown grammar version
      "xx1:k1:sr0.ir1.ib2.sb3",     // unknown kind tag
      "ar1:k1:sr0.ir1.ib2",         // missing stage
      "ar1:k1:sr0.ir1.ib2.sb",      // truncated trailing lag
      "ar1:k1:sr0.ir1.ib2.sb3.",    // trailing separator
      "ar1:k1:sr0.ir1.ib2.sb3x",    // trailing junk
      "ar1:k1:sr0.ir1.ib2.sb3.sb4", // duplicate stage
      "ar1:k0:sr0.ir1.ib2.sb3",     // leaders < 1
      "ar1:k999:sr0.ir1.ib2.sb3",   // leaders > kMaxLeaders
      "ar1:k1:sr1.ir1.ib2.sb3",     // chain head lag != 0
      "ar1:k1:sr0.ir1.ib0.sb3",     // lag decreasing along the chain
      "ar1:k1:ir0.sr0.ib1.sb2",     // equal-lag prerequisite emitted late
      "bc1:k2:ib0.sb1",             // bcast is single-leader
      "bc1:k1:ib0",                 // missing stage
      "ar1:k1:r:sr0.ir1.ib2.sb3",   // stripe token without a digit
      "ar1:k1:r0:sr0.ir1.ib2.sb3",  // stripe factor < 1
      "ar1:k1:r999:sr0.ir1.ib2.sb3",  // stripe factor > kMaxStripe
      "ar1:k1:r2",                  // stripe token then nothing
      "ar1:k1:r2sr0.ir1.ib2.sb3",   // missing colon after the stripe
      "bc1:k1:r:ib0.sb1",           // bcast stripe without a digit
  };
  for (const char* id : bad) {
    SynthSpec spec;
    EXPECT_FALSE(SynthSpec::parse(id, &spec)) << "'" << id << "'";
  }
}

// --- canonical shape == hand-written builders -------------------------------

TEST(SynthBuilderTest, CanonicalAllreduceMatchesHandWritten) {
  SynthWorld sw(machine::make_aries(2, 4));
  const mpi::Comm& wc = sw.world.world_comm();
  const SynthSpec spec = SynthSpec::canonical(CollKind::Allreduce);
  for (std::size_t bytes : {std::size_t{64} << 10, std::size_t{1} << 20}) {
    for (int window : {1, 2}) {
      const HanConfig cfg = base_cfg(64 << 10, window);
      for (int me = 0; me < wc.size(); ++me) {
        task::TaskGraph hand = task::build_allreduce(
            sw.han, wc, me, BufView::timing_only(bytes),
            BufView::timing_only(bytes), Datatype::Byte, mpi::ReduceOp::Sum,
            cfg);
        task::TaskGraph synthd = synth::build_schedule_allreduce(
            sw.han, wc, me, BufView::timing_only(bytes),
            BufView::timing_only(bytes), Datatype::Byte, mpi::ReduceOp::Sum,
            cfg, spec);
        expect_same_graph(hand, synthd,
                          "allreduce rank " + std::to_string(me));
      }
    }
  }
}

TEST(SynthBuilderTest, CanonicalBcastMatchesHandWritten) {
  SynthWorld sw(machine::make_aries(2, 4));
  const mpi::Comm& wc = sw.world.world_comm();
  const SynthSpec spec = SynthSpec::canonical(CollKind::Bcast);
  for (std::size_t bytes : {std::size_t{64} << 10, std::size_t{1} << 20}) {
    const HanConfig cfg = base_cfg(64 << 10, 1);
    for (int me = 0; me < wc.size(); ++me) {
      task::TaskGraph hand =
          task::build_bcast(sw.han, wc, me, 0, BufView::timing_only(bytes),
                            Datatype::Byte, cfg);
      task::TaskGraph synthd = synth::build_schedule_bcast(
          sw.han, wc, me, 0, BufView::timing_only(bytes), Datatype::Byte,
          cfg, spec);
      expect_same_graph(hand, synthd, "bcast rank " + std::to_string(me));
    }
  }
}

// --- HanConfig round trip ---------------------------------------------------

TEST(SynthConfigTest, SchedFieldRoundTripsAndFailsLoudlyWhenTruncated) {
  HanConfig cfg = base_cfg(64 << 10, 2);
  cfg.sched = SynthSpec::canonical(CollKind::Allreduce).id();
  HanConfig back;
  ASSERT_TRUE(HanConfig::parse(cfg.to_string(), &back));
  EXPECT_EQ(back.sched, cfg.sched);
  EXPECT_EQ(back.to_string(), cfg.to_string());

  // A truncated schedule id must fail the whole parse, not silently
  // dispatch to the hand-written builders.
  std::string text = cfg.to_string();
  text.resize(text.size() - 1);
  EXPECT_FALSE(HanConfig::parse(text, &back)) << text;
  EXPECT_FALSE(HanConfig::parse("fs=64K sched=", &back));
  EXPECT_FALSE(HanConfig::parse("fs=64K sched=ar1", &back));
}

// --- cost model -------------------------------------------------------------

TEST(SynthCostTest, CostsArePositiveAndBandwidthDominatesLatency) {
  const HanConfig cfg = base_cfg(64 << 10, 1);
  const synth::CostPoint c = synth::symbolic_cost(
      SynthSpec::canonical(CollKind::Allreduce), cfg, 4, 8, 1 << 20);
  EXPECT_GT(c.lat, 0.0);
  // The bw walk covers every segment, the lat walk at most two.
  EXPECT_GE(c.bw, c.lat);
  synth::CostPoint a{1.0, 2.0};
  EXPECT_TRUE(a.dominates(synth::CostPoint{1.0, 3.0}));
  EXPECT_FALSE(a.dominates(a));
  EXPECT_FALSE(a.dominates(synth::CostPoint{0.5, 3.0}));
}

// --- synthesis engine -------------------------------------------------------

synth::SynthOptions tiny_options() {
  synth::SynthOptions opts;
  opts.sizes = {64 << 10};
  opts.fs_sizes = {64 << 10};
  opts.windows = {2};
  opts.mutation_rounds = 1;
  opts.mutants_per_round = 4;
  opts.max_finalists = 3;
  return opts;
}

TEST(SynthEngineTest, DeterministicAcrossRuns) {
  const synth::SynthOptions opts = tiny_options();
  const synth::SynthResult a = synth::run_synthesis(opts);
  const synth::SynthResult b = synth::run_synthesis(opts);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.winners().serialize(), b.winners().serialize());
  ASSERT_EQ(a.cases.size(), b.cases.size());
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    ASSERT_EQ(a.cases[i].winner, b.cases[i].winner);
    if (a.cases[i].winner < 0) continue;
    EXPECT_EQ(a.cases[i].finalists[a.cases[i].winner].cfg.to_string(),
              b.cases[i].finalists[b.cases[i].winner].cfg.to_string());
  }
}

TEST(SynthEngineTest, FinalistsVerifyCleanAndWinnersNeverLose) {
  const synth::SynthResult r = synth::run_synthesis(tiny_options());
  EXPECT_EQ(r.finalist_findings(), 0);
  ASSERT_EQ(r.cases.size(), 2u);  // allreduce + bcast at one size
  EXPECT_EQ(r.wins(), 2);
  for (const synth::SynthCase& c : r.cases) {
    ASSERT_GE(c.winner, 0) << c.name;
    ASSERT_GT(c.baseline, 0.0) << c.name;
    const synth::Candidate& w = c.finalists[c.winner];
    EXPECT_TRUE(w.verified) << c.name;
    EXPECT_LE(w.time, c.baseline * (1.0 + 1e-9)) << c.name;
    EXPECT_FALSE(w.cfg.sched.empty()) << c.name;
  }
}

TEST(SynthEngineTest, WinnerSurvivesSerializeLoadDispatchRoundTrip) {
  const synth::SynthOptions opts = tiny_options();
  const synth::SynthResult r = synth::run_synthesis(opts);
  const std::string text = r.winners().serialize();

  tune::LookupTable table;
  ASSERT_TRUE(tune::LookupTable::deserialize(text, &table)) << text;
  EXPECT_EQ(table.serialize(), text);

  // Every reloaded winner re-verifies clean...
  verify::SweepResult sweep;
  verify::verify_lookup(table, sweep);
  EXPECT_EQ(sweep.entries.size(), r.cases.size());
  EXPECT_EQ(sweep.total_errors(), 0) << sweep.summary();
  EXPECT_EQ(sweep.total_warnings(), 0) << sweep.summary();

  // ...and dispatches through the ordinary cfg entry points, reproducing
  // the exact time the synthesizer measured (the simulator is
  // deterministic and measurements are translation-invariant).
  SynthWorld sw(machine::make_aries(opts.nodes, opts.ppn));
  tune::Searcher searcher(sw.world, sw.han, sw.world.world_comm());
  for (const synth::SynthCase& c : r.cases) {
    const HanConfig* cfg =
        table.find(c.kind, opts.nodes, opts.ppn, c.bytes);
    ASSERT_NE(cfg, nullptr) << c.name;
    EXPECT_EQ(cfg->to_string(), c.finalists[c.winner].cfg.to_string());
    const double t = searcher.measure_collective(c.kind, c.bytes, *cfg);
    EXPECT_NEAR(t, c.finalists[c.winner].time,
                1e-12 + 1e-9 * c.finalists[c.winner].time)
        << c.name;
  }
}

// --- three-level grammar (derived NUMA ladders, docs/HIERARCHY.md) ----------

TEST(SynthSpec3Test, ThreeLevelGrammarRoundTripsAndDetectsMidRoles) {
  for (CollKind kind : {CollKind::Allreduce, CollKind::Bcast}) {
    synth::GeneratorOptions g3;
    g3.three_level = true;
    const std::vector<SynthSpec> specs = synth::enumerate_specs(kind, 4, g3);
    ASSERT_FALSE(specs.empty());
    for (const SynthSpec& spec : specs) {
      EXPECT_TRUE(spec.three_level()) << spec.id();
      EXPECT_TRUE(spec.validate().empty()) << spec.id();
      SynthSpec back;
      ASSERT_TRUE(SynthSpec::parse(spec.id(), &back)) << spec.id();
      EXPECT_EQ(back, spec) << spec.id();
    }
    const SynthSpec canon3 = SynthSpec::canonical3(kind);
    EXPECT_TRUE(canon3.validate().empty()) << canon3.id();
    EXPECT_TRUE(canon3.three_level());
    SynthSpec back;
    ASSERT_TRUE(SynthSpec::parse(canon3.id(), &back));
    EXPECT_EQ(back, canon3);
  }
  EXPECT_EQ(SynthSpec::canonical3(CollKind::Allreduce).id(),
            "ar1:k1:sr0.mr1.ir2.ib3.mb4.sb5");
  EXPECT_EQ(SynthSpec::canonical3(CollKind::Bcast).id(), "bc1:k1:ib0.mb1.sb2");
  // Flat specs never report a mid chain.
  EXPECT_FALSE(SynthSpec::canonical(CollKind::Allreduce).three_level());
}

TEST(SynthSpec3Test, LoneOrPartialMidRolesAreRejectedLoudly) {
  const char* bad[] = {
      "ar1:k1:sr0.mr1.ir2.ib3.sb4",     // mr without mb: wrong multiset
      "ar1:k1:sr0.ir1.ib2.mb3.sb4",     // mb without mr
      "bc1:k1:mb0.sb1",                 // mid chain head must be ib
      "bc1:k1:ib0.mb1.mb2.sb3",         // duplicate mid stage
      "ar1:k1:sr0.ir1.mr2.ib3.mb4.sb5", // lag order breaks the mid chain
  };
  for (const char* id : bad) {
    SynthSpec spec;
    EXPECT_FALSE(SynthSpec::parse(id, &spec)) << "'" << id << "'";
  }
}

TEST(SynthBuilder3Test, Canonical3MatchesHandWrittenLadderOnNuma) {
  SynthWorld sw(machine::with_numa(machine::make_aries(2, 4), 2));
  const mpi::Comm& wc = sw.world.world_comm();
  ASSERT_EQ(sw.han.hierarchy(wc).depth(), 3);
  for (std::size_t bytes : {std::size_t{64} << 10, std::size_t{1} << 20}) {
    for (int window : {1, 2}) {
      const HanConfig cfg = base_cfg(64 << 10, window);
      const SynthSpec ar3 = SynthSpec::canonical3(CollKind::Allreduce);
      const SynthSpec bc3 = SynthSpec::canonical3(CollKind::Bcast);
      for (int me = 0; me < wc.size(); ++me) {
        task::TaskGraph hand = task::build_allreduce(
            sw.han, wc, me, BufView::timing_only(bytes),
            BufView::timing_only(bytes), Datatype::Byte, mpi::ReduceOp::Sum,
            cfg);
        task::TaskGraph synthd = synth::build_schedule_allreduce(
            sw.han, wc, me, BufView::timing_only(bytes),
            BufView::timing_only(bytes), Datatype::Byte, mpi::ReduceOp::Sum,
            cfg, ar3);
        expect_same_graph(hand, synthd,
                          "allreduce3 rank " + std::to_string(me));

        task::TaskGraph handb =
            task::build_bcast(sw.han, wc, me, 0, BufView::timing_only(bytes),
                              Datatype::Byte, cfg);
        task::TaskGraph synthb = synth::build_schedule_bcast(
            sw.han, wc, me, 0, BufView::timing_only(bytes), Datatype::Byte,
            cfg, bc3);
        expect_same_graph(handb, synthb,
                          "bcast3 rank " + std::to_string(me));
      }
    }
  }
}

TEST(SynthBuilder3Test, ThreeLevelSpecDegeneratesToFlatGraphOnFlatMachine) {
  // A mid-carrying spec on a flat machine must drop its mid stages and
  // reproduce the flat spec's graph (modulo the lag renumbering).
  SynthWorld sw(machine::make_aries(2, 4));
  const mpi::Comm& wc = sw.world.world_comm();
  ASSERT_EQ(sw.han.hierarchy(wc).depth(), 2);
  SynthSpec flat, three;
  ASSERT_TRUE(SynthSpec::parse("bc1:k1:ib0.sb1", &flat));
  ASSERT_TRUE(SynthSpec::parse("bc1:k1:ib0.mb1.sb2", &three));
  const HanConfig cfg = base_cfg(64 << 10, 2);
  const std::size_t bytes = 256 << 10;
  for (int me = 0; me < wc.size(); ++me) {
    task::TaskGraph g3 = synth::build_schedule_bcast(
        sw.han, wc, me, 0, BufView::timing_only(bytes), Datatype::Byte, cfg,
        three);
    for (const task::TaskNode& n : g3.nodes) {
      EXPECT_NE(n.level, task::Level::Mid) << "rank " << me;
    }
    EXPECT_TRUE(task::validate_graph(g3).empty()) << "rank " << me;
    // Same stage multiset as the flat spec's graph.
    task::TaskGraph g2 = synth::build_schedule_bcast(
        sw.han, wc, me, 0, BufView::timing_only(bytes), Datatype::Byte, cfg,
        flat);
    EXPECT_EQ(g3.nodes.size(), g2.nodes.size()) << "rank " << me;
  }
}

TEST(SynthEngine3Test, NumaSynthesisVerifiesCleanAndBeatsLadderBaseline) {
  synth::SynthOptions opts = tiny_options();
  opts.nodes = 2;
  opts.ppn = 4;
  opts.numa = 2;
  const synth::SynthResult r = synth::run_synthesis(opts);
  EXPECT_EQ(r.finalist_findings(), 0);
  ASSERT_EQ(r.cases.size(), 2u);
  EXPECT_EQ(r.wins(), 2);
  for (const synth::SynthCase& c : r.cases) {
    EXPECT_NE(c.name.find("2x2x4"), std::string::npos) << c.name;
    ASSERT_GE(c.winner, 0) << c.name;
    ASSERT_GT(c.baseline, 0.0) << c.name;
    const synth::Candidate& w = c.finalists[c.winner];
    EXPECT_TRUE(w.verified) << c.name;
    EXPECT_LE(w.time, c.baseline * (1.0 + 1e-9)) << c.name;
    // The canonical three-level ladder shape is always a finalist, so a
    // clean run means the winner matched or beat the retired han3 shape.
    bool has_canon3 = false;
    for (const synth::Candidate& f : c.finalists) {
      has_canon3 |= f.cfg.sched == SynthSpec::canonical3(c.kind).id();
    }
    EXPECT_TRUE(has_canon3) << c.name;
  }
  // The report is deterministic and carries the numa machine tag.
  EXPECT_NE(r.to_json().find("\"machine\": \"2x2x4\""), std::string::npos);
  EXPECT_EQ(r.to_json(), synth::run_synthesis(opts).to_json());
}

// --- search-space axis ------------------------------------------------------

TEST(SynthSearchSpaceTest, SchedAxisCrossesMatchingKindsOnly) {
  tune::SearchSpace space;
  space.fs_sizes = {64 << 10};
  space.imods = {"adapt"};
  space.smods = {"sm"};
  space.adapt_algs = {coll::Algorithm::Binary};
  space.adapt_inter_segments = {32 << 10};
  const std::size_t plain =
      space.enumerate(CollKind::Allreduce).size();

  space.scheds = {SynthSpec::canonical(CollKind::Allreduce).id(),
                  SynthSpec::canonical(CollKind::Bcast).id()};
  const std::vector<HanConfig> ar = space.enumerate(CollKind::Allreduce);
  // One matching id doubles the space; the bcast id is skipped.
  EXPECT_EQ(ar.size(), plain * 2);
  std::size_t with_sched = 0;
  for (const HanConfig& cfg : ar) {
    if (!cfg.sched.empty()) {
      ++with_sched;
      EXPECT_EQ(cfg.sched, space.scheds[0]);
    }
  }
  EXPECT_EQ(with_sched, plain);

  // Unknown kinds keep the plain space (no sched id applies).
  for (const HanConfig& cfg : space.enumerate(CollKind::Gather)) {
    EXPECT_TRUE(cfg.sched.empty());
  }
}

}  // namespace
}  // namespace han

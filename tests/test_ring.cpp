// The han::ring subsystem: flat ring reduce-scatter / allgather / allreduce
// correctness, and the hierarchical HanModule::ireduce_scatter built on top
// (both the ring and the tree inter-node paths, across cluster shapes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coll_test_util.hpp"
#include "han/han.hpp"

namespace han {
namespace {

using coll::CollConfig;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::CollHarness;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

// 120 is divisible by every tested comm size (1..6, 8).
constexpr std::size_t kCount = 120;

// --- flat RingModule -------------------------------------------------------

void check_flat_reduce_scatter(int n) {
  CollHarness h(machine::make_aries(n, 1));
  const std::size_t block = kCount / n;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, kCount);
    recv[r].assign(block, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.mods.ring().ireduce_scatter(
        h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
        BufView::of(recv[r], Datatype::Int32), Datatype::Int32, ReduceOp::Sum,
        CollConfig{});
  });
  const auto full = expected_reduce(ReduceOp::Sum, n, kCount);
  for (int r = 0; r < n; ++r) {
    const std::vector<std::int32_t> want(full.begin() + r * block,
                                         full.begin() + (r + 1) * block);
    EXPECT_EQ(recv[r], want) << "rank " << r << " of " << n;
  }
}

TEST(RingReduceScatter, FlatCorrectAcrossSizes) {
  for (int n : {1, 2, 3, 4, 5, 6, 8}) check_flat_reduce_scatter(n);
}

TEST(RingAllgather, FlatCorrect) {
  const int n = 5;
  CollHarness h(machine::make_aries(n, 1));
  const std::size_t block = kCount / n;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, block);
    recv[r].assign(kCount, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.mods.ring().iallgather(
        h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
        BufView::of(recv[r], Datatype::Int32), CollConfig{});
  });
  std::vector<std::int32_t> want;
  for (int r = 0; r < n; ++r) {
    const auto v = pattern_vec(r, block);
    want.insert(want.end(), v.begin(), v.end());
  }
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], want) << "rank " << r;
}

TEST(RingAllreduce, FlatCorrect) {
  const int n = 6;
  CollHarness h(machine::make_aries(n, 1));
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, kCount);
    recv[r].assign(kCount, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.mods.ring().iallreduce(
        h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
        BufView::of(recv[r], Datatype::Int32), Datatype::Int32, ReduceOp::Sum,
        CollConfig{});
  });
  const auto want = expected_reduce(ReduceOp::Sum, n, kCount);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], want) << "rank " << r;
}

// --- hierarchical HanModule::ireduce_scatter -------------------------------

struct HanHarness : CollHarness {
  explicit HanHarness(machine::MachineProfile profile, bool data_mode = true)
      : CollHarness(std::move(profile), data_mode), han(world, rt, mods) {}
  core::HanModule han;
};

core::HanConfig make_cfg(std::size_t fs, const std::string& imod,
                         const std::string& smod) {
  core::HanConfig cfg;
  cfg.fs = fs;
  cfg.imod = imod;
  cfg.smod = smod;
  if (imod == "ring") {
    cfg.ibalg = coll::Algorithm::Ring;
    cfg.iralg = coll::Algorithm::Ring;
  }
  return cfg;
}

void check_han_reduce_scatter(int nodes, int ppn, const core::HanConfig& cfg,
                              std::size_t count_per_rank) {
  HanHarness h(machine::make_aries(nodes, ppn));
  const int n = nodes * ppn;
  const std::size_t total = count_per_rank * n;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, total);
    recv[r].assign(count_per_rank, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.ireduce_scatter_cfg(
        h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
        BufView::of(recv[r], Datatype::Int32), Datatype::Int32, ReduceOp::Sum,
        cfg);
  });
  const auto full = expected_reduce(ReduceOp::Sum, n, total);
  for (int r = 0; r < n; ++r) {
    const std::vector<std::int32_t> want(
        full.begin() + r * count_per_rank,
        full.begin() + (r + 1) * count_per_rank);
    EXPECT_EQ(recv[r], want)
        << "rank " << r << " nodes=" << nodes << " ppn=" << ppn
        << " cfg=" << cfg.to_string();
  }
}

TEST(HanReduceScatter, TreePathCorrectAcrossShapes) {
  for (auto [nodes, ppn] : {std::pair{4, 4}, {2, 3}, {1, 4}, {4, 1}, {3, 2}}) {
    // fs large enough for u=1 and small enough for a deep pipeline.
    check_han_reduce_scatter(nodes, ppn, make_cfg(1 << 20, "libnbc", "sm"),
                             500);
    check_han_reduce_scatter(nodes, ppn, make_cfg(2 << 10, "adapt", "sm"),
                             500);
  }
}

TEST(HanReduceScatter, RingPathCorrectAcrossShapes) {
  for (auto [nodes, ppn] : {std::pair{4, 4}, {2, 3}, {1, 4}, {4, 1}, {3, 2}}) {
    check_han_reduce_scatter(nodes, ppn, make_cfg(1 << 20, "ring", "sm"), 500);
    check_han_reduce_scatter(nodes, ppn, make_cfg(2 << 10, "ring", "solo"),
                             500);
  }
}

TEST(HanReduceScatter, RingBeatsTreeAtLargeMessages) {
  // The crossover the autotuner exploits: at large m the ring inter-node
  // algorithm (~m bytes per leader) beats reduce-to-root + scatter (~2m).
  auto timed = [&](const core::HanConfig& cfg, std::size_t bytes) {
    HanHarness h(machine::make_aries(8, 4), /*data_mode=*/false);
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ireduce_scatter_cfg(
          h.world.world_comm(), rank.world_rank, BufView::timing_only(bytes),
          BufView::timing_only(bytes / 32), Datatype::Byte, ReduceOp::Sum,
          cfg);
    });
    return *std::max_element(done.begin(), done.end());
  };
  const std::size_t large = 32u << 20;
  const double t_ring = timed(make_cfg(2 << 20, "ring", "solo"), large);
  const double t_tree = timed(make_cfg(2 << 20, "adapt", "solo"), large);
  EXPECT_LT(t_ring, t_tree);

  // At latency-bound sizes the tree's log-depth wins over the ring's n-1
  // serial steps (measured crossover on this topology: ~1-2KB).
  const std::size_t small = 256;
  const double s_ring = timed(make_cfg(2 << 10, "ring", "sm"), small);
  const double s_tree = timed(make_cfg(2 << 10, "adapt", "sm"), small);
  EXPECT_LT(s_tree, s_ring);
}

TEST(HanReduceScatter, DefaultDecisionPicksRingForLargeMessages) {
  EXPECT_EQ(core::HanModule::default_config(coll::CollKind::ReduceScatter, 8,
                                            4, 32u << 20)
                .imod,
            "ring");
  EXPECT_NE(core::HanModule::default_config(coll::CollKind::ReduceScatter, 8,
                                            4, 16u << 10)
                .imod,
            "ring");
}

}  // namespace
}  // namespace han

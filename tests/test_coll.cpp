// Collective layer tests: data correctness of every algorithm/module
// combination (parameterized), instance lifecycle, timing sanity.
#include <gtest/gtest.h>

#include <numeric>

#include "coll_test_util.hpp"
#include "coll/topology.hpp"

namespace han::coll {
namespace {

using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::CollHarness;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

// --- topology ----------------------------------------------------------

TEST(Topology, BinomialShape8) {
  // vrank 0 of 8: children 4, 2, 1 (largest subtree first).
  TreeNode n0 = tree_node(Algorithm::Binomial, 8, 0);
  EXPECT_EQ(n0.parent, -1);
  EXPECT_EQ(n0.children, (std::vector<int>{4, 2, 1}));
  TreeNode n6 = tree_node(Algorithm::Binomial, 8, 6);
  EXPECT_EQ(n6.parent, 4);
  EXPECT_EQ(n6.children, (std::vector<int>{7}));
  TreeNode n5 = tree_node(Algorithm::Binomial, 8, 5);
  EXPECT_EQ(n5.parent, 4);
  EXPECT_TRUE(n5.children.empty());
}

TEST(Topology, BinomialNonPowerOfTwo) {
  TreeNode n0 = tree_node(Algorithm::Binomial, 6, 0);
  EXPECT_EQ(n0.children, (std::vector<int>{4, 2, 1}));
  TreeNode n4 = tree_node(Algorithm::Binomial, 6, 4);
  EXPECT_EQ(n4.parent, 0);
  EXPECT_EQ(n4.children, (std::vector<int>{5}));
}

TEST(Topology, ChainShape) {
  TreeNode n = tree_node(Algorithm::Chain, 5, 2);
  EXPECT_EQ(n.parent, 1);
  EXPECT_EQ(n.children, (std::vector<int>{3}));
  EXPECT_TRUE(tree_node(Algorithm::Chain, 5, 4).children.empty());
}

TEST(Topology, BinaryShape) {
  TreeNode n1 = tree_node(Algorithm::Binary, 7, 1);
  EXPECT_EQ(n1.parent, 0);
  EXPECT_EQ(n1.children, (std::vector<int>{3, 4}));
}

TEST(Topology, LinearShape) {
  TreeNode n0 = tree_node(Algorithm::Linear, 4, 0);
  EXPECT_EQ(n0.children, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(tree_node(Algorithm::Linear, 4, 3).parent, 0);
}

TEST(Topology, EveryRankReachableOnce) {
  for (Algorithm alg : {Algorithm::Linear, Algorithm::Chain, Algorithm::Binary,
                        Algorithm::Binomial}) {
    for (int n : {1, 2, 3, 7, 16, 33}) {
      std::vector<int> seen(n, 0);
      for (int v = 0; v < n; ++v) {
        for (int c : tree_node(alg, n, v).children) {
          ASSERT_GE(c, 0);
          ASSERT_LT(c, n);
          ++seen[c];
        }
        // parent/child consistency
        const TreeNode node = tree_node(alg, n, v);
        if (node.parent >= 0) {
          const TreeNode p = tree_node(alg, n, node.parent);
          EXPECT_NE(std::find(p.children.begin(), p.children.end(), v),
                    p.children.end())
              << algorithm_name(alg) << " n=" << n << " v=" << v;
        }
      }
      EXPECT_EQ(seen[0], 0);
      for (int v = 1; v < n; ++v) {
        EXPECT_EQ(seen[v], 1) << algorithm_name(alg) << " n=" << n;
      }
    }
  }
}

TEST(Segmenter, SplitsAndClamps) {
  Segmenter s(10, 4, Datatype::Byte);
  EXPECT_EQ(s.count(), 3);
  EXPECT_EQ(s.length(0), 4u);
  EXPECT_EQ(s.length(2), 2u);
  EXPECT_EQ(s.offset(2), 8u);

  Segmenter whole(100, 0, Datatype::Byte);
  EXPECT_EQ(whole.count(), 1);
  EXPECT_EQ(whole.length(0), 100u);

  // Element alignment: int32 segments round down to multiples of 4.
  Segmenter aligned(64, 10, Datatype::Int32);
  EXPECT_EQ(aligned.length(0) % 4, 0u);

  // Cap: a million tiny segments coarsen to the max.
  Segmenter capped(1 << 20, 1, Datatype::Byte);
  EXPECT_LE(capped.count(), Segmenter::kMaxInternalSegments);
}

// --- parameterized bcast correctness ------------------------------------

struct BcastCase {
  const char* module;
  Algorithm alg;
  int nodes, ppn;
  int root;
  std::size_t count;    // int32 elements
  std::size_t segment;  // bytes
};

class BcastCorrectness : public ::testing::TestWithParam<BcastCase> {};

TEST_P(BcastCorrectness, DataArrivesEverywhere) {
  const BcastCase& c = GetParam();
  CollHarness h(machine::make_aries(c.nodes, c.ppn));
  CollModule* mod = h.mods.find(c.module);
  ASSERT_NE(mod, nullptr);
  const int n = h.world.world_size();

  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == c.root ? pattern_vec(c.root, c.count)
                          : std::vector<std::int32_t>(c.count, -1);
  }
  CollConfig cfg;
  cfg.alg = c.alg;
  cfg.segment = c.segment;
  run_collective(h.world, [&](mpi::Rank& rank) {
    return mod->ibcast(h.world.world_comm(), rank.world_rank, c.root,
                       BufView::of(bufs[rank.world_rank], Datatype::Int32),
                       Datatype::Int32, cfg);
  });
  const auto expect = pattern_vec(c.root, c.count);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(bufs[r], expect) << "rank " << r;
  }
  EXPECT_EQ(h.rt.live_instances(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TreeModules, BcastCorrectness,
    ::testing::Values(
        BcastCase{"libnbc", Algorithm::Default, 4, 2, 0, 64, 0},
        BcastCase{"libnbc", Algorithm::Default, 3, 1, 2, 1000, 0},
        BcastCase{"adapt", Algorithm::Chain, 4, 2, 0, 4096, 1024},
        BcastCase{"adapt", Algorithm::Binary, 5, 2, 3, 4096, 512},
        BcastCase{"adapt", Algorithm::Binomial, 8, 1, 1, 2048, 4096},
        BcastCase{"adapt", Algorithm::Chain, 2, 2, 0, 1, 0},
        BcastCase{"tuned", Algorithm::Default, 4, 4, 0, 64, 0},
        BcastCase{"tuned", Algorithm::Default, 4, 4, 5, 100000, 0},
        BcastCase{"tuned", Algorithm::Linear, 3, 2, 0, 256, 0},
        BcastCase{"tuned", Algorithm::Default, 1, 1, 0, 16, 0}));

INSTANTIATE_TEST_SUITE_P(
    IntraModules, BcastCorrectness,
    ::testing::Values(
        BcastCase{"sm", Algorithm::Default, 1, 8, 0, 1024, 0},
        BcastCase{"sm", Algorithm::Default, 1, 5, 3, 17, 0},
        BcastCase{"sm", Algorithm::Default, 1, 2, 1, 100000, 0},
        BcastCase{"solo", Algorithm::Default, 1, 8, 0, 1024, 0},
        BcastCase{"solo", Algorithm::Default, 1, 7, 6, 33, 0},
        BcastCase{"solo", Algorithm::Default, 1, 3, 0, 250000, 0}));

// --- parameterized reduce correctness -----------------------------------

struct ReduceCase {
  const char* module;
  Algorithm alg;
  int nodes, ppn;
  int root;
  std::size_t count;
  std::size_t segment;
  ReduceOp op;
};

class ReduceCorrectness : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceCorrectness, RootHoldsReduction) {
  const ReduceCase& c = GetParam();
  CollHarness h(machine::make_aries(c.nodes, c.ppn));
  CollModule* mod = h.mods.find(c.module);
  ASSERT_NE(mod, nullptr);
  const int n = h.world.world_size();

  std::vector<std::vector<std::int32_t>> send(n);
  std::vector<std::vector<std::int32_t>> recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, c.count);
    recv[r].assign(c.count, -99);
  }
  CollConfig cfg;
  cfg.alg = c.alg;
  cfg.segment = c.segment;
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return mod->ireduce(h.world.world_comm(), r, c.root,
                        BufView::of(send[r], Datatype::Int32),
                        BufView::of(recv[r], Datatype::Int32), Datatype::Int32,
                        c.op, cfg);
  });
  EXPECT_EQ(recv[c.root], expected_reduce(c.op, n, c.count));
  // Send buffers must be untouched.
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(send[r], pattern_vec(r, c.count)) << "rank " << r;
  }
  EXPECT_EQ(h.rt.live_instances(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TreeModules, ReduceCorrectness,
    ::testing::Values(
        ReduceCase{"libnbc", Algorithm::Default, 4, 2, 0, 64, 0,
                   ReduceOp::Sum},
        ReduceCase{"libnbc", Algorithm::Default, 3, 2, 4, 513, 0,
                   ReduceOp::Max},
        ReduceCase{"adapt", Algorithm::Chain, 4, 1, 0, 2048, 2048,
                   ReduceOp::Sum},
        ReduceCase{"adapt", Algorithm::Binary, 6, 1, 2, 1024, 1024,
                   ReduceOp::Min},
        ReduceCase{"adapt", Algorithm::Binomial, 7, 1, 0, 100, 0,
                   ReduceOp::Bxor},
        ReduceCase{"tuned", Algorithm::Default, 2, 4, 0, 50000, 0,
                   ReduceOp::Sum},
        ReduceCase{"tuned", Algorithm::Default, 2, 2, 3, 7, 0,
                   ReduceOp::Bor}));

INSTANTIATE_TEST_SUITE_P(
    IntraModules, ReduceCorrectness,
    ::testing::Values(
        ReduceCase{"sm", Algorithm::Default, 1, 8, 0, 256, 0, ReduceOp::Sum},
        ReduceCase{"sm", Algorithm::Default, 1, 6, 2, 1000, 0, ReduceOp::Max},
        ReduceCase{"sm", Algorithm::Default, 1, 2, 1, 9, 0, ReduceOp::Band},
        ReduceCase{"solo", Algorithm::Default, 1, 8, 0, 256, 0,
                   ReduceOp::Sum},
        ReduceCase{"solo", Algorithm::Default, 1, 5, 4, 77, 0,
                   ReduceOp::Prod},
        ReduceCase{"solo", Algorithm::Default, 1, 3, 0, 65536, 0,
                   ReduceOp::Min}));

// --- allreduce correctness ----------------------------------------------

struct AllreduceCase {
  const char* module;
  int nodes, ppn;
  std::size_t count;
  ReduceOp op;
};

class AllreduceCorrectness : public ::testing::TestWithParam<AllreduceCase> {
};

TEST_P(AllreduceCorrectness, EveryRankHoldsReduction) {
  const AllreduceCase& c = GetParam();
  CollHarness h(machine::make_aries(c.nodes, c.ppn));
  CollModule* mod = h.mods.find(c.module);
  ASSERT_NE(mod, nullptr);
  const int n = h.world.world_size();

  std::vector<std::vector<std::int32_t>> send(n);
  std::vector<std::vector<std::int32_t>> recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, c.count);
    recv[r].assign(c.count, -99);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return mod->iallreduce(h.world.world_comm(), r,
                           BufView::of(send[r], Datatype::Int32),
                           BufView::of(recv[r], Datatype::Int32),
                           Datatype::Int32, c.op, CollConfig{});
  });
  const auto expect = expected_reduce(c.op, n, c.count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], expect) << "rank " << r;
  EXPECT_EQ(h.rt.live_instances(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModules, AllreduceCorrectness,
    ::testing::Values(
        AllreduceCase{"libnbc", 4, 2, 128, ReduceOp::Sum},
        AllreduceCase{"libnbc", 3, 2, 100, ReduceOp::Max},  // non-pow2 (6)
        AllreduceCase{"adapt", 5, 1, 501, ReduceOp::Sum},   // non-pow2 (5)
        AllreduceCase{"tuned", 4, 2, 64, ReduceOp::Sum},
        // tuned large → ring path (256KB)
        AllreduceCase{"tuned", 8, 1, 70000, ReduceOp::Sum},
        AllreduceCase{"tuned", 3, 1, 70000, ReduceOp::Min},  // ring, n=3
        AllreduceCase{"sm", 1, 8, 333, ReduceOp::Sum},
        AllreduceCase{"solo", 1, 6, 333, ReduceOp::Sum}));

// --- gather / scatter / allgather / barrier -----------------------------

TEST(GatherScatter, LinearGatherCollectsBlocks) {
  CollHarness h(machine::make_aries(3, 2));
  const int n = 6;
  const std::size_t count = 64;
  const int root = 2;
  std::vector<std::vector<std::int32_t>> send(n);
  std::vector<std::int32_t> recv(count * n, -1);
  for (int r = 0; r < n; ++r) send[r] = pattern_vec(r, count);

  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    BufView recv_view = r == root ? BufView::of(recv, Datatype::Int32)
                                  : BufView::timing_only(recv.size() * 4);
    return h.mods.libnbc().igather(h.world.world_comm(), r, root,
                                   BufView::of(send[r], Datatype::Int32),
                                   recv_view, CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(recv[r * count + i], test::pattern(r, i))
          << "block " << r << " elem " << i;
    }
  }
}

TEST(GatherScatter, LinearScatterDistributesBlocks) {
  CollHarness h(machine::make_aries(3, 2));
  const int n = 6;
  const std::size_t count = 32;
  const int root = 0;
  std::vector<std::int32_t> send(count * n);
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      send[r * count + i] = test::pattern(r, i);
    }
  }
  std::vector<std::vector<std::int32_t>> recv(n);
  for (int r = 0; r < n; ++r) recv[r].assign(count, -1);

  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    BufView send_view = r == root ? BufView::of(send, Datatype::Int32)
                                  : BufView::timing_only(send.size() * 4);
    return h.mods.adapt().iscatter(h.world.world_comm(), r, root, send_view,
                                   BufView::of(recv[r], Datatype::Int32),
                                   CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(recv[r], pattern_vec(r, count)) << "rank " << r;
  }
}

TEST(Allgather, RingGathersEverywhere) {
  CollHarness h(machine::make_aries(5, 1));
  const int n = 5;
  const std::size_t count = 48;
  std::vector<std::vector<std::int32_t>> send(n);
  std::vector<std::vector<std::int32_t>> recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count * n, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.mods.libnbc().iallgather(h.world.world_comm(), r,
                                      BufView::of(send[r], Datatype::Int32),
                                      BufView::of(recv[r], Datatype::Int32),
                                      CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    for (int b = 0; b < n; ++b) {
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(recv[r][b * count + i], test::pattern(b, i))
            << "rank " << r << " block " << b;
      }
    }
  }
}

TEST(Barrier, NoRankLeavesBeforeLastEnters) {
  CollHarness h(machine::make_aries(4, 2), /*data_mode=*/false);
  std::vector<double> leave(8, -1.0);
  h.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](CollHarness& h3, mpi::Rank& rank3,
              std::vector<double>& leave3) -> sim::CoTask {
      // Rank r arrives at r * 10us.
      co_await sim::Delay{h3.world.engine(), rank3.world_rank * 10e-6};
      mpi::Request r = h3.mods.libnbc().ibarrier(h3.world.world_comm(),
                                                rank3.world_rank);
      co_await *r;
      leave3[rank3.world_rank] = h3.world.now();
    }(h, rank, leave);
  });
  // Last entry at 70us; nobody can leave earlier.
  for (int r = 0; r < 8; ++r) EXPECT_GE(leave[r], 70e-6) << "rank " << r;
}

TEST(SmBarrier, FlagDisseminationHoldsEveryone) {
  CollHarness h(machine::make_aries(1, 6), /*data_mode=*/false);
  std::vector<double> leave(6, -1.0);
  h.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](CollHarness& h2, mpi::Rank& rank2,
              std::vector<double>& leave2) -> sim::CoTask {
      co_await sim::Delay{h2.world.engine(), rank2.world_rank * 5e-6};
      mpi::Request r =
          h2.mods.sm().ibarrier(h2.world.world_comm(), rank2.world_rank);
      co_await *r;
      leave2[rank2.world_rank] = h2.world.now();
    }(h, rank, leave);
  });
  for (int r = 0; r < 6; ++r) EXPECT_GE(leave[r], 25e-6) << "rank " << r;
}

// --- timing sanity -------------------------------------------------------

double time_bcast(const char* module, Algorithm alg, int nodes, int ppn,
                  std::size_t bytes, std::size_t segment) {
  CollHarness h(machine::make_aries(nodes, ppn), /*data_mode=*/false);
  CollModule* mod = h.mods.find(module);
  CollConfig cfg;
  cfg.alg = alg;
  cfg.segment = segment;
  auto done = run_collective(h.world, [&](mpi::Rank& rank) {
    return mod->ibcast(h.world.world_comm(), rank.world_rank, 0,
                       mpi::BufView::timing_only(bytes), Datatype::Byte, cfg);
  });
  return *std::max_element(done.begin(), done.end());
}

TEST(TimingSanity, SegmentationHelpsChainOnLargeMessages) {
  const double whole =
      time_bcast("adapt", Algorithm::Chain, 8, 1, 4 << 20, 4 << 20);
  const double segmented =
      time_bcast("adapt", Algorithm::Chain, 8, 1, 4 << 20, 128 << 10);
  EXPECT_LT(segmented, whole * 0.6);  // pipelining must pay off
}

// At 64 ranks the (n-1) serialized send overheads of linear lose to the
// binomial tree's log2(n) latency hops.
TEST(TimingSanity, BinomialBeatsLinearOnSmallManyRanks) {
  const double linear = time_bcast("tuned", Algorithm::Linear, 64, 1, 8, 0);
  const double binomial =
      time_bcast("tuned", Algorithm::Binomial, 64, 1, 8, 0);
  EXPECT_LT(binomial, linear);
}

TEST(TimingSanity, SmBeatsSoloSmall_SoloBeatsSmLarge) {
  const double sm_small = time_bcast("sm", Algorithm::Default, 1, 16, 512, 0);
  const double solo_small =
      time_bcast("solo", Algorithm::Default, 1, 16, 512, 0);
  EXPECT_LT(sm_small, solo_small);

  const double sm_large =
      time_bcast("sm", Algorithm::Default, 1, 16, 4 << 20, 0);
  const double solo_large =
      time_bcast("solo", Algorithm::Default, 1, 16, 4 << 20, 0);
  EXPECT_LT(solo_large, sm_large);
}

TEST(TimingSanity, AdaptSetupHurtsTinyMessages) {
  // Libnbc has lower setup; ADAPT wins on segmented large messages.
  const double libnbc_tiny =
      time_bcast("libnbc", Algorithm::Default, 8, 1, 8, 0);
  const double adapt_tiny =
      time_bcast("adapt", Algorithm::Binomial, 8, 1, 8, 0);
  EXPECT_LT(libnbc_tiny, adapt_tiny);
}

TEST(TunedDecision, MatchesDocumentedSwitchPoints) {
  EXPECT_EQ(TunedModule::decide_bcast(64, 1024).alg, Algorithm::Binomial);
  EXPECT_EQ(TunedModule::decide_bcast(64, 64 << 10).alg, Algorithm::Binary);
  EXPECT_EQ(TunedModule::decide_bcast(64, 32 << 20).alg, Algorithm::Chain);
  EXPECT_EQ(TunedModule::decide_reduce(64, 512).alg, Algorithm::Binomial);
  EXPECT_EQ(TunedModule::decide_reduce(64, 32 << 20).alg, Algorithm::Chain);
  EXPECT_EQ(TunedModule::decide_reduce(64, 1 << 20).alg, Algorithm::Binary);
  EXPECT_TRUE(TunedModule::allreduce_uses_ring(64, 4 << 20));
  EXPECT_FALSE(TunedModule::allreduce_uses_ring(4096, 4 << 20));
  EXPECT_FALSE(TunedModule::allreduce_uses_ring(64, 1024));
}

TEST(ModuleRegistry, CapabilitiesMatchPaper) {
  CollHarness h(machine::make_aries(2, 2));
  EXPECT_TRUE(h.mods.libnbc().nonblocking_capable());
  EXPECT_TRUE(h.mods.adapt().nonblocking_capable());
  EXPECT_FALSE(h.mods.tuned().nonblocking_capable());
  EXPECT_TRUE(h.mods.sm().intra_node_only());
  EXPECT_TRUE(h.mods.solo().intra_node_only());
  EXPECT_TRUE(h.mods.adapt().reduce_uses_avx());
  EXPECT_TRUE(h.mods.solo().reduce_uses_avx());
  EXPECT_FALSE(h.mods.libnbc().reduce_uses_avx());
  EXPECT_FALSE(h.mods.sm().reduce_uses_avx());
  EXPECT_TRUE(h.mods.ring().nonblocking_capable());
  EXPECT_TRUE(h.mods.ring().reduce_uses_avx());
  EXPECT_EQ(h.mods.find("ring"), &h.mods.ring());
  EXPECT_EQ(h.mods.find("nonexistent"), nullptr);
  EXPECT_EQ(h.mods.inter_modules().size(), 3u);
  EXPECT_EQ(h.mods.intra_modules().size(), 2u);
  // ADAPT advertises the paper's three algorithms.
  const auto algs = h.mods.adapt().bcast_algorithms();
  EXPECT_EQ(algs.size(), 3u);
}

// --- staggered arrival (MPI semantics) -----------------------------------

TEST(ArrivalSemantics, LateRootDelaysEveryone) {
  CollHarness h(machine::make_aries(2, 2), /*data_mode=*/false);
  auto time_with_root_delay = [&](double delay) {
    CollHarness hh(machine::make_aries(2, 2), false);
    auto done = run_collective(
        hh.world,
        [&](mpi::Rank& rank) {
          return hh.mods.libnbc().ibcast(hh.world.world_comm(),
                                         rank.world_rank, 0,
                                         mpi::BufView::timing_only(1024),
                                         Datatype::Byte, CollConfig{});
        },
        [&](int r) { return r == 0 ? delay : 0.0; });
    return done;
  };
  auto fast = time_with_root_delay(0.0);
  auto slow = time_with_root_delay(100e-6);
  // Non-root ranks' inclusive time grows by about the root's tardiness.
  EXPECT_GT(slow[3], fast[3] + 90e-6);
}

TEST(ArrivalSemantics, LateLeafDoesNotBlockRootBcast) {
  CollHarness h(machine::make_aries(4, 1), /*data_mode=*/false);
  // Binomial bcast from 0; rank 3 (a leaf under rank 2) arrives late.
  auto done = run_collective(
      h.world,
      [&](mpi::Rank& rank) {
        return h.mods.libnbc().ibcast(h.world.world_comm(), rank.world_rank,
                                      0, mpi::BufView::timing_only(1024),
                                      Datatype::Byte, CollConfig{});
      },
      [&](int r) { return r == 3 ? 500e-6 : 0.0; });
  // Root finishes its sends long before the straggler shows up.
  EXPECT_LT(done[0], 100e-6);
}

}  // namespace
}  // namespace han::coll

// han::obs tests: metric primitives (time-weighted gauge math, weighted
// histograms), golden snapshots of the JSON/CSV/trace exports, JSON
// validity (including control-character escaping), the instrumentation
// threaded through the stack (flownet utilization, collective runtime
// kind/level counters, HAN decision counters), and byte-for-byte
// determinism of reports across identical runs.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

#include "coll_test_util.hpp"
#include "han/han.hpp"
#include "obs/report.hpp"
#include "simbase/trace.hpp"

namespace han::obs {
namespace {

using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::run_collective;

// --- Minimal strict JSON validator (no external deps) -------------------

class JsonValidator {
 public:
  static bool valid(const std::string& s) {
    JsonValidator v(s);
    v.ws();
    if (!v.value()) return false;
    v.ws();
    return v.pos_ == s.size();
  }

 private:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  void ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool lit(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos_;
    while (!eof() && peek() != '"') {
      const unsigned char c = static_cast<unsigned char>(peek());
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = peek();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              return false;
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    if (eof()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (eof() || peek() != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- Primitives ----------------------------------------------------------

TEST(ObsCounter, Accumulates) {
  MetricsRegistry m;
  Counter& c = m.counter("x");
  c.add(2.0);
  c.add(3.5);
  EXPECT_DOUBLE_EQ(c.value(), 5.5);
  EXPECT_EQ(&m.counter("x"), &c);  // find-or-create returns the same slot
  EXPECT_EQ(m.metric_count(), 1u);
}

TEST(ObsGauge, TimeWeightedStats) {
  MetricsRegistry m;
  Gauge& g = m.gauge("inflight");
  g.set(0.0, 1.0);
  g.set(0.5, 2.0);  // [0, 0.5) at 1.0
  g.set(1.0, 0.0);  // [0.5, 1) at 2.0; zero afterwards
  // Window closes at t = 2: integral 1.5 over 2s, nonzero for 1s.
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 2.0);
  EXPECT_DOUBLE_EQ(g.mean(2.0), 0.75);
  EXPECT_DOUBLE_EQ(g.active_seconds(2.0), 1.0);
  EXPECT_DOUBLE_EQ(g.mean_active(2.0), 1.5);  // overlap ratio
}

TEST(ObsGauge, PendingIntervalCountsTowardMean) {
  MetricsRegistry m;
  Gauge& g = m.gauge("g");
  g.set(0.0, 4.0);
  // No update since t=0; querying at t=2 must include the open interval.
  EXPECT_DOUBLE_EQ(g.mean(2.0), 4.0);
  EXPECT_DOUBLE_EQ(g.active_seconds(2.0), 2.0);
}

TEST(ObsHistogram, WeightedBucketsAndQuantiles) {
  MetricsRegistry m;
  Histogram& h = m.histogram("lat", {1.0, 2.0});
  h.observe(0.5);       // bucket [<=1]
  h.observe(1.5, 2.0);  // bucket (1, 2], weight 2
  h.observe(5.0);       // overflow
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(h.weighted_mean(), 2.125);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  ASSERT_EQ(h.weights().size(), 3u);
  EXPECT_DOUBLE_EQ(h.weights()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.weights()[1], 2.0);
  EXPECT_DOUBLE_EQ(h.weights()[2], 1.0);
}

TEST(ObsGauge, TracerMirrorDedupesUnchangedValues) {
  sim::Tracer tracer;
  MetricsRegistry m;
  m.set_tracer(&tracer);
  Gauge& g = m.gauge("util");
  g.set(0.0, 1.0);
  g.set(1.0, 1.0);  // unchanged — no new sample
  g.set(2.0, 0.5);
  ASSERT_EQ(tracer.counter_count(), 2u);
  EXPECT_EQ(tracer.counters()[0].name, "util");
  EXPECT_DOUBLE_EQ(tracer.counters()[1].value, 0.5);
}

// --- Golden snapshots ----------------------------------------------------

MetricsRegistry& golden_registry(MetricsRegistry& m) {
  m.set_meta("binary", "golden");
  m.counter("coll.bytes").add(4096.0);
  Gauge& g = m.gauge("inflight");
  g.set(0.0, 1.0);
  g.set(0.5, 2.0);
  g.set(1.0, 0.0);
  Histogram& h = m.histogram("lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5, 2.0);
  h.observe(5.0);
  return m;
}

TEST(ObsExport, GoldenJson) {
  MetricsRegistry m;
  const std::string json = golden_registry(m).to_json(2.0);
  EXPECT_EQ(json,
            "{\n"
            "\"meta\":{\"binary\":\"golden\"},\n"
            "\"sim_seconds\":2,\n"
            "\"counters\":{\n"
            "\"coll.bytes\":4096},\n"
            "\"gauges\":{\n"
            "\"inflight\":{\"value\":0,\"mean\":0.75,\"mean_active\":1.5,"
            "\"active_seconds\":1,\"max\":2}},\n"
            "\"histograms\":{\n"
            "\"lat\":{\"weight\":4,\"mean\":2.125,\"p50\":2,\"p99\":2,"
            "\"bounds\":[1,2],\"weights\":[1,2,1]}}\n"
            "}\n");
  EXPECT_TRUE(JsonValidator::valid(json));
}

TEST(ObsExport, GoldenCsv) {
  MetricsRegistry m;
  EXPECT_EQ(golden_registry(m).to_csv(2.0),
            "type,name,field,value\n"
            "meta,binary,value,golden\n"
            "run,sim_seconds,value,2\n"
            "counter,coll.bytes,value,4096\n"
            "gauge,inflight,value,0\n"
            "gauge,inflight,mean,0.75\n"
            "gauge,inflight,mean_active,1.5\n"
            "gauge,inflight,active_seconds,1\n"
            "gauge,inflight,max,2\n"
            "histogram,lat,weight,4\n"
            "histogram,lat,mean,2.125\n"
            "histogram,lat,p50,2\n"
            "histogram,lat,p99,2\n");
}

TEST(ObsExport, GoldenTrace) {
  sim::Tracer t;
  t.span(1, "coll", "a\"b\\c\x01", 0.0, 1e-6, 3);
  t.counter("util", 0.0, 0.5, 3);
  const std::string json = t.to_chrome_json();
  EXPECT_EQ(json,
            "{\"traceEvents\":[\n"
            "{\"ph\":\"M\",\"pid\":3,\"name\":\"process_name\","
            "\"args\":{\"name\":\"node 3\"}},\n"
            "{\"ph\":\"M\",\"pid\":3,\"tid\":1,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"rank 1\"}},\n"
            "{\"ph\":\"X\",\"pid\":3,\"tid\":1,\"cat\":\"coll\","
            "\"name\":\"a\\\"b\\\\c\\u0001\",\"ts\":0.000,\"dur\":1.000},\n"
            "{\"ph\":\"C\",\"pid\":3,\"name\":\"util\",\"ts\":0.000,"
            "\"args\":{\"value\":0.5}}\n"
            "]}\n");
  EXPECT_TRUE(JsonValidator::valid(json));
}

TEST(ObsExport, ControlCharsInMetaStayValidJson) {
  MetricsRegistry m;
  m.set_meta("cmd", "a\nb\tc\x02");
  const std::string json = m.to_json(0.0);
  EXPECT_TRUE(JsonValidator::valid(json));
  EXPECT_NE(json.find("\\u000a"), std::string::npos);
  EXPECT_NE(json.find("\\u0002"), std::string::npos);
}

TEST(ObsExport, WriteReportCreatesBothFiles) {
  MetricsRegistry m;
  golden_registry(m);
  const std::string base = ::testing::TempDir() + "obs_report_test";
  ASSERT_TRUE(write_report(m, 2.0, base));
  for (const char* ext : {".json", ".csv"}) {
    std::FILE* f = std::fopen((base + ext).c_str(), "rb");
    ASSERT_NE(f, nullptr) << base << ext;
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 0);
    std::fclose(f);
    std::remove((base + ext).c_str());
  }
}

// --- Instrumented simulation ---------------------------------------------

struct HanHarness : test::CollHarness {
  explicit HanHarness(machine::MachineProfile profile)
      : CollHarness(std::move(profile), /*data_mode=*/false),
        han(world, rt, mods) {}
  core::HanModule han;
};

void run_han_allreduce(HanHarness& h, std::size_t bytes) {
  run_collective(h.world, [&](mpi::Rank& rank) -> mpi::Request {
    return h.han.iallreduce(h.world.world_comm(), rank.world_rank,
                            BufView::timing_only(bytes),
                            BufView::timing_only(bytes), Datatype::Float,
                            ReduceOp::Sum, coll::CollConfig{});
  });
}

TEST(ObsPipeline, CollectiveFillsTheRegistry) {
  HanHarness h(machine::make_aries(2, 4));
  run_han_allreduce(h, 1 << 20);
  MetricsRegistry& m = h.world.metrics();
  const sim::Time now = h.world.now();

  // MPI + flownet layers saw traffic.
  EXPECT_GT(m.counter("mpi.messages").value(), 0.0);
  EXPECT_GT(m.counter("mpi.p2p_bytes").value(), 0.0);
  EXPECT_GT(m.counter("net.flows.started").value(), 0.0);
  EXPECT_DOUBLE_EQ(m.counter("net.flows.started").value(),
                   m.counter("net.flows.completed").value());
  EXPECT_GT(m.gauge("net.res.fabric.util").max(), 0.0);
  EXPECT_GT(m.counter("net.res.fabric.bytes").value(), 0.0);
  EXPECT_GT(m.histogram("net.fabric.queue_depth").total_weight(), 0.0);

  // Collective runtime: per-kind and per-level accounting.
  EXPECT_GT(m.counter("coll.actions.send").value(), 0.0);
  EXPECT_GT(m.counter("coll.bytes.send").value(), 0.0);
  EXPECT_GT(m.counter("coll.busy_seconds.send").value(), 0.0);
  EXPECT_GE(m.gauge("coll.inflight").max(), 1.0);
  EXPECT_GE(m.gauge("coll.inflight").mean_active(now), 1.0);
  EXPECT_GT(m.histogram("coll.action_seconds").total_weight(), 0.0);
  EXPECT_GT(m.counter("coll.level.intra.actions").value(), 0.0);
  EXPECT_GT(m.counter("coll.level.inter.actions").value(), 0.0);
  EXPECT_GE(m.gauge("coll.level.inter.inflight").mean_active(now), 1.0);

  // HAN decision layer.
  EXPECT_DOUBLE_EQ(m.counter("han.decide.allreduce").value(), 8.0);
  EXPECT_GT(m.counter("han.decide.bytes").value(), 0.0);
}

TEST(ObsPipeline, TracerSpansCarryTheNodeAsPid) {
  sim::Tracer tracer;
  HanHarness h(machine::make_aries(2, 4));
  h.world.set_tracer(&tracer);
  h.rt.set_tracer(&tracer);
  run_han_allreduce(h, 256 << 10);
  ASSERT_GT(tracer.size(), 0u);
  ASSERT_GT(tracer.counter_count(), 0u);
  bool node1 = false;
  for (const sim::Tracer::Span& s : tracer.spans()) {
    EXPECT_EQ(s.pid, s.tid / 4) << "pid must be the rank's node";
    node1 |= s.pid == 1;
  }
  EXPECT_TRUE(node1);
  EXPECT_TRUE(JsonValidator::valid(tracer.to_chrome_json()));
}

// Two identical runs must produce byte-identical reports and traces —
// the property EXPERIMENTS.md relies on when committing figure metrics.
TEST(ObsPipeline, ReportsAreDeterministic) {
  auto run_once = [](std::string& json, std::string& csv,
                     std::string& trace) {
    sim::Tracer tracer;
    HanHarness h(machine::make_aries(3, 4));
    h.world.set_tracer(&tracer);
    h.rt.set_tracer(&tracer);
    run_han_allreduce(h, 512 << 10);
    json = h.world.metrics().to_json(h.world.now());
    csv = h.world.metrics().to_csv(h.world.now());
    trace = tracer.to_chrome_json();
  };
  std::string json1, csv1, trace1, json2, csv2, trace2;
  run_once(json1, csv1, trace1);
  run_once(json2, csv2, trace2);
  EXPECT_TRUE(JsonValidator::valid(json1));
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(csv1, csv2);
  EXPECT_EQ(trace1, trace2);
}

}  // namespace
}  // namespace han::obs

// han::verify mutation corpus: every test seeds a known-bad schedule (or
// a known-good one that earlier analyzer iterations mis-flagged) and
// asserts the analyzer reports exactly the right diagnostic class with a
// usable witness. The clean-sweep tests then pin the real builders to
// zero findings, and the gate tests cover the CollRuntime hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coll/builders.hpp"
#include "coll/ring/ring_builders.hpp"
#include "coll/validate.hpp"
#include "han/verify/sweep.hpp"
#include "han/verify/verify.hpp"
#include "machine/machine.hpp"
#include "coll_test_util.hpp"

namespace han::verify {
namespace {

using coll::Action;
using coll::BuildSpec;
using coll::compute_action;
using coll::copy_action;
using coll::cross_copy_action;
using coll::cross_dep;
using coll::dep;
using coll::Plan;
using coll::recv_action;
using coll::reduce_action;
using coll::send_action;
using coll::SlotRef;

const Finding* find_diag(const Report& rep, Diag d) {
  for (const Finding& f : rep.findings) {
    if (f.code == d) return &f;
  }
  return nullptr;
}

int count_diag(const Report& rep, Diag d) {
  int n = 0;
  for (const Finding& f : rep.findings) n += f.code == d;
  return n;
}

// ---- deadlock class ----------------------------------------------------

// The MPI classic: both ranks do a blocking send then recv. Deadlocks
// under rendezvous (each send waits for the peer's recv, which waits for
// the local send), completes if sends are eager.
Plan blocking_exchange() {
  Plan p(2, /*user_slots=*/2);
  for (int r = 0; r < 2; ++r) {
    auto& rp = p.ranks[r];
    const int s = rp.add(send_action(1 - r, 0, 64, SlotRef{0, 0}));
    Action v = recv_action(1 - r, 0, 64, SlotRef{1, 0});
    v.deps.push_back(dep(s));  // "blocking" send: recv waits on it
    rp.add(std::move(v));
  }
  return p;
}

TEST(VerifyDeadlock, BlockingExchangeDeadlocksUnderRendezvous) {
  const Report rep = analyze_plan(blocking_exchange(), 2);
  const Finding* f = find_diag(rep, Diag::WaitCycle);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Error);
  // Witness: a cycle touching both ranks.
  ASSERT_GE(f->cycle.size(), 4u);
  bool r0 = false, r1 = false;
  for (const Event& e : f->cycle) {
    r0 |= e.rank == 0;
    r1 |= e.rank == 1;
  }
  EXPECT_TRUE(r0 && r1) << f->message;
}

TEST(VerifyDeadlock, BlockingExchangeEscapesWhenEager) {
  Options opts;
  opts.assume_rendezvous = false;
  const Report rep = analyze_plan(blocking_exchange(), 2, opts);
  EXPECT_EQ(find_diag(rep, Diag::WaitCycle), nullptr) << rep.to_string();
  EXPECT_TRUE(rep.clean());
}

TEST(VerifyDeadlock, RecvBeforeSendCycleIsProtocolIndependent) {
  // Both ranks post the recv first and gate their send on it: a hard
  // dependency cycle through the data edges, deadlocked even with eager
  // sends.
  Plan p(2, 2);
  for (int r = 0; r < 2; ++r) {
    auto& rp = p.ranks[r];
    const int v = rp.add(recv_action(1 - r, 0, 64, SlotRef{1, 0}));
    Action s = send_action(1 - r, 0, 64, SlotRef{0, 0});
    s.deps.push_back(dep(v));
    rp.add(std::move(s));
  }
  Options opts;
  opts.assume_rendezvous = false;
  const Report rep = analyze_plan(p, 2, opts);
  EXPECT_NE(find_diag(rep, Diag::WaitCycle), nullptr) << rep.to_string();
}

TEST(VerifyDeadlock, CrossRankDependencyCycle) {
  // rank 0's compute waits on rank 1's and vice versa.
  Plan p(2, 1);
  Action a = compute_action(1e-6);
  a.deps.push_back(cross_dep(1, 0, 0.0));
  p.ranks[0].add(std::move(a));
  Action b = compute_action(1e-6);
  b.deps.push_back(cross_dep(0, 0, 0.0));
  p.ranks[1].add(std::move(b));
  const Report rep = analyze_plan(p, 2);
  const Finding* f = find_diag(rep, Diag::WaitCycle);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->cycle.empty());
}

TEST(VerifyDeadlock, NonblockingExchangeIsClean) {
  Plan p(2, 2);
  for (int r = 0; r < 2; ++r) {
    auto& rp = p.ranks[r];
    rp.add(recv_action(1 - r, 0, 64, SlotRef{1, 0}));
    rp.add(send_action(1 - r, 0, 64, SlotRef{0, 0}));
  }
  const Report rep = analyze_plan(p, 2);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(rep.error_count(), 0);
  EXPECT_EQ(rep.match_edges, 2);
}

// ---- matching class ----------------------------------------------------

TEST(VerifyMatching, UnmatchedSendFlagged) {
  Plan p(2, 1);
  p.ranks[0].add(send_action(1, 3, 64, SlotRef{0, 0}));
  const Report rep = analyze_plan(p, 2);
  const Finding* f = find_diag(rep, Diag::UnmatchedSend);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rank_a, 0);
  EXPECT_EQ(f->index_a, 0);
}

TEST(VerifyMatching, UnmatchedRecvFlagged) {
  Plan p(2, 1);
  p.ranks[1].add(recv_action(0, 3, 64, SlotRef{0, 0}));
  const Report rep = analyze_plan(p, 2);
  const Finding* f = find_diag(rep, Diag::UnmatchedRecv);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rank_a, 1);
  EXPECT_EQ(f->index_a, 0);
}

TEST(VerifyMatching, SizeMismatchFlagged) {
  Plan p(2, 2);
  p.ranks[0].add(send_action(1, 0, 64, SlotRef{0, 0}));
  p.ranks[1].add(recv_action(0, 0, 128, SlotRef{1, 0}));
  const Report rep = analyze_plan(p, 2);
  const Finding* f = find_diag(rep, Diag::SizeMismatch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rank_a, 0);
  EXPECT_EQ(f->rank_b, 1);
}

TEST(VerifyMatching, SwappedPeerMutationOnGather) {
  BuildSpec spec;
  spec.bytes = 256;
  Plan p = coll::build_linear_gather(4, spec);
  ASSERT_TRUE(coll::validate_plan(p, 4).empty());
  // Mutation: redirect rank 2's contribution to rank 1 instead of root.
  bool mutated = false;
  for (Action& a : p.ranks[2].actions) {
    if (a.kind == Action::Kind::Send) {
      a.peer = 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const Report rep = analyze_plan(p, 4);
  EXPECT_FALSE(rep.clean());
  EXPECT_NE(find_diag(rep, Diag::UnmatchedSend), nullptr);
  EXPECT_NE(find_diag(rep, Diag::UnmatchedRecv), nullptr);
}

TEST(VerifyMatching, SwappedTagMutationOnBcast) {
  BuildSpec spec;
  spec.alg = coll::Algorithm::Binomial;
  spec.bytes = 4096;
  Plan p = coll::build_tree_bcast(4, spec);
  bool mutated = false;
  for (Action& a : p.ranks[3].actions) {
    if (a.kind == Action::Kind::Recv) {
      a.tag += 7;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const Report rep = analyze_plan(p, 4);
  EXPECT_FALSE(rep.clean());
  EXPECT_NE(find_diag(rep, Diag::UnmatchedRecv), nullptr);
  EXPECT_NE(find_diag(rep, Diag::UnmatchedSend), nullptr);
}

TEST(VerifyMatching, ForcedPostingInversionIsError) {
  // Two same-key sends on rank 0 where cross-rank dependencies force the
  // later-emitted one to post first, inverting FIFO pairing.
  Plan p(2, 2);
  auto& r0 = p.ranks[0];
  Action s0 = send_action(1, 5, 64, SlotRef{0, 0});
  s0.deps.push_back(cross_dep(1, 2, 0.0));  // waits on rank 1's compute
  r0.add(std::move(s0));
  r0.add(send_action(1, 5, 64, SlotRef{0, 0}));
  auto& r1 = p.ranks[1];
  r1.add(recv_action(0, 5, 64, SlotRef{1, 0}));
  r1.add(recv_action(0, 5, 64, SlotRef{1, 0}));
  Action c = compute_action(1e-6);
  c.deps.push_back(cross_dep(0, 1, 0.0));  // ... which waits on send #2
  r1.add(std::move(c));
  const Report rep = analyze_plan(p, 2);
  bool inversion_error = false;
  for (const Finding& f : rep.findings) {
    inversion_error |= f.code == Diag::MatchOrderAmbiguous &&
                       f.severity == Severity::Error;
  }
  EXPECT_TRUE(inversion_error) << rep.to_string();
}

TEST(VerifyMatching, DepFreeSameKeySendsPostInIndexOrder) {
  // Two dep-free same-key sends: the runtime issues them in index order
  // within one cascade, which the analyzer proves — not even a warning.
  Plan p(2, 2);
  p.ranks[0].add(send_action(1, 5, 64, SlotRef{0, 0}));
  p.ranks[0].add(send_action(1, 5, 64, SlotRef{0, 0}));
  Action v0 = recv_action(0, 5, 64, SlotRef{1, 0});
  const int v0i = p.ranks[1].add(std::move(v0));
  Action v1 = recv_action(0, 5, 64, SlotRef{1, 64});
  v1.deps.push_back(dep(v0i));
  p.ranks[1].add(std::move(v1));
  const Report rep = analyze_plan(p, 2);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(find_diag(rep, Diag::MatchOrderAmbiguous), nullptr);
}

TEST(VerifyMatching, RacySameKeyOpsAreWarningOnly) {
  // Same-key sends gated on *unordered* recvs from different peers: their
  // posting order really is timing-dependent — a warning (the pairing is
  // a guess), but not an error (no forced inversion).
  Plan p(4, 2);
  auto& r0 = p.ranks[0];
  const int vx = r0.add(recv_action(1, 1, 64, SlotRef{1, 0}));
  const int vy = r0.add(recv_action(2, 2, 64, SlotRef{1, 64}));
  Action sa = send_action(3, 5, 64, SlotRef{0, 0});
  sa.deps.push_back(dep(vx));
  r0.add(std::move(sa));
  Action sb = send_action(3, 5, 64, SlotRef{0, 0});
  sb.deps.push_back(dep(vy));
  r0.add(std::move(sb));
  p.ranks[1].add(send_action(0, 1, 64, SlotRef{0, 0}));
  p.ranks[2].add(send_action(0, 2, 64, SlotRef{0, 0}));
  const int w0 = p.ranks[3].add(recv_action(0, 5, 64, SlotRef{1, 0}));
  Action w1 = recv_action(0, 5, 64, SlotRef{1, 64});
  w1.deps.push_back(dep(w0));
  p.ranks[3].add(std::move(w1));
  const Report rep = analyze_plan(p, 4);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  const Finding* f = find_diag(rep, Diag::MatchOrderAmbiguous);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_EQ(f->rank_a, 0);
}

// ---- race class --------------------------------------------------------

TEST(VerifyRace, DroppedDepRecvReduceRace) {
  // recv into tmp, reduce tmp into acc — with the recv->reduce dependency
  // dropped (the classic builder mutation).
  Plan p(2, 2);
  p.ranks[1].add(send_action(0, 0, 256, SlotRef{0, 0}));
  auto& r0 = p.ranks[0];
  r0.temp_slots.push_back(256);
  const SlotRef tmp{2, 0};
  r0.add(recv_action(1, 0, 256, tmp));
  r0.add(reduce_action(256, tmp, SlotRef{1, 0}, mpi::ReduceOp::Sum,
                       mpi::Datatype::Int32, false));  // no dep!
  const Report rep = analyze_plan(p, 2);
  const Finding* f = find_diag(rep, Diag::BufferRace);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->slot, 2);
  EXPECT_EQ(f->lo, 0u);
  EXPECT_EQ(f->hi, 256u);
}

TEST(VerifyRace, DroppedDepMutationOnRecdoub) {
  BuildSpec spec;
  spec.bytes = 1024;
  spec.dtype = mpi::Datatype::Int32;
  Plan p = coll::build_recdoub_allreduce(4, spec);
  ASSERT_TRUE(analyze_plan(p, 4).clean());
  bool mutated = false;
  for (Action& a : p.ranks[2].actions) {
    if (a.kind == Action::Kind::Reduce && !a.deps.empty()) {
      a.deps.clear();
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const Report rep = analyze_plan(p, 4);
  EXPECT_FALSE(rep.clean());
  EXPECT_NE(find_diag(rep, Diag::BufferRace), nullptr) << rep.to_string();
}

TEST(VerifyRace, OverlappingRecvWindowsRace) {
  // Two concurrent recvs into overlapping halves of one slot.
  Plan p(3, 2);
  p.ranks[1].add(send_action(0, 0, 100, SlotRef{0, 0}));
  p.ranks[2].add(send_action(0, 0, 100, SlotRef{0, 0}));
  p.ranks[0].add(recv_action(1, 0, 100, SlotRef{1, 0}));
  p.ranks[0].add(recv_action(2, 0, 100, SlotRef{1, 50}));
  const Report rep = analyze_plan(p, 3);
  EXPECT_EQ(count_diag(rep, Diag::BufferRace), 1) << rep.to_string();
  const Finding* f = find_diag(rep, Diag::BufferRace);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->slot, 1);
  EXPECT_EQ(f->lo, 50u);
  EXPECT_EQ(f->hi, 100u);
}

TEST(VerifyRace, OverlappingWriteMutationOnGather) {
  BuildSpec spec;
  spec.bytes = 64;
  Plan p = coll::build_linear_gather(4, spec);
  ASSERT_TRUE(analyze_plan(p, 4).clean());
  // Mutation: root's recv from rank 2 lands on rank 1's region.
  bool mutated = false;
  for (Action& a : p.ranks[0].actions) {
    if (a.kind == Action::Kind::Recv && a.peer == 2) {
      a.dst.offset = 64;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const Report rep = analyze_plan(p, 4);
  const Finding* f = find_diag(rep, Diag::BufferRace);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->slot, 1);
}

TEST(VerifyRace, UnorderedAccumulationsGetOwnDiagnostic) {
  // Two reduces into the same interval, each gated only on its own recv:
  // the accumulation order is timing-dependent (fp nondeterminism).
  Plan p(3, 2);
  p.ranks[1].add(send_action(0, 0, 128, SlotRef{0, 0}));
  p.ranks[2].add(send_action(0, 0, 128, SlotRef{0, 0}));
  auto& r0 = p.ranks[0];
  r0.temp_slots.push_back(128);
  r0.temp_slots.push_back(128);
  const int v1 = r0.add(recv_action(1, 0, 128, SlotRef{2, 0}));
  const int v2 = r0.add(recv_action(2, 0, 128, SlotRef{3, 0}));
  Action red1 = reduce_action(128, SlotRef{2, 0}, SlotRef{1, 0},
                              mpi::ReduceOp::Sum, mpi::Datatype::Int32,
                              false);
  red1.deps.push_back(dep(v1));
  r0.add(std::move(red1));
  Action red2 = reduce_action(128, SlotRef{3, 0}, SlotRef{1, 0},
                              mpi::ReduceOp::Sum, mpi::Datatype::Int32,
                              false);
  red2.deps.push_back(dep(v2));
  r0.add(std::move(red2));
  const Report rep = analyze_plan(p, 3);
  EXPECT_NE(find_diag(rep, Diag::ReduceOrderAmbiguous), nullptr)
      << rep.to_string();
  EXPECT_EQ(find_diag(rep, Diag::BufferRace), nullptr);
}

TEST(VerifyRace, ChainedAccumulationsAreClean) {
  Plan p(3, 2);
  p.ranks[1].add(send_action(0, 0, 128, SlotRef{0, 0}));
  p.ranks[2].add(send_action(0, 0, 128, SlotRef{0, 0}));
  auto& r0 = p.ranks[0];
  r0.temp_slots.push_back(128);
  r0.temp_slots.push_back(128);
  const int v1 = r0.add(recv_action(1, 0, 128, SlotRef{2, 0}));
  const int v2 = r0.add(recv_action(2, 0, 128, SlotRef{3, 0}));
  Action red1 = reduce_action(128, SlotRef{2, 0}, SlotRef{1, 0},
                              mpi::ReduceOp::Sum, mpi::Datatype::Int32,
                              false);
  red1.deps.push_back(dep(v1));
  const int r1i = r0.add(std::move(red1));
  Action red2 = reduce_action(128, SlotRef{3, 0}, SlotRef{1, 0},
                              mpi::ReduceOp::Sum, mpi::Datatype::Int32,
                              false);
  red2.deps.push_back(dep(v2));
  red2.deps.push_back(dep(r1i));  // fixed order
  r0.add(std::move(red2));
  const Report rep = analyze_plan(p, 3);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST(VerifyRace, SendSnapshotThenOverwriteIsClean) {
  // Regression: a send snapshots its payload at issue, so a reduce that
  // overwrites the buffer afterwards (gated on the exchange's recv, the
  // recursive-doubling shape) is NOT a race.
  Plan p(2, 2);
  for (int r = 0; r < 2; ++r) {
    auto& rp = p.ranks[r];
    rp.temp_slots.push_back(256);
    const SlotRef acc{1, 0}, tmp{2, 0};
    const int init = rp.add(copy_action(256, SlotRef{0, 0}, acc));
    Action s = send_action(1 - r, 0, 256, acc);
    s.deps.push_back(dep(init));
    rp.add(std::move(s));
    Action v = recv_action(1 - r, 0, 256, tmp);
    v.deps.push_back(dep(init));
    const int vi = rp.add(std::move(v));
    Action red = reduce_action(256, tmp, acc, mpi::ReduceOp::Sum,
                               mpi::Datatype::Int32, false);
    red.deps.push_back(dep(vi));
    rp.add(std::move(red));
  }
  const Report rep = analyze_plan(p, 2);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(find_diag(rep, Diag::BufferRace), nullptr);
}

TEST(VerifyRace, RingPhaseOverlapIsClean) {
  // Regression: ring allreduce's allgather-phase recv lands on bytes the
  // reduce-scatter-phase send read; the data's trip around the ring
  // orders them. Earlier analyzer iterations flagged this.
  BuildSpec spec;
  spec.bytes = 8 * 64 * 1024;
  spec.dtype = mpi::Datatype::Int32;
  const Plan p = coll::build_ring_allreduce(8, spec);
  const Report rep = analyze_plan(p, 8);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(rep.findings.size(), 0u);
}

// ---- cross-access class ------------------------------------------------

TEST(VerifyCross, UnorderedCrossAccessFlagged) {
  Plan p(2, 2);
  p.ranks[1].add(compute_action(1e-6));
  // rank 0 reads rank 1's slot with no ordering against rank 1 at all.
  p.ranks[0].add(cross_copy_action(1, 64, SlotRef{0, 0}, SlotRef{1, 0}));
  const Report rep = analyze_plan(p, 2);
  const Finding* f = find_diag(rep, Diag::CrossAccessUnordered);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rank_a, 0);
  EXPECT_EQ(f->rank_b, 1);
}

TEST(VerifyCross, SequencedCrossAccessClean) {
  Plan p(2, 2);
  p.ranks[1].add(compute_action(1e-6));
  Action cc = cross_copy_action(1, 64, SlotRef{0, 0}, SlotRef{1, 0});
  cc.deps.push_back(cross_dep(1, 0, 0.0));
  p.ranks[0].add(std::move(cc));
  const Report rep = analyze_plan(p, 2);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(find_diag(rep, Diag::CrossAccessUnordered), nullptr);
}

// ---- graph level -------------------------------------------------------

GraphNodeSummary gnode(int ctx, int step, int op,
                       std::vector<int> members,
                       std::vector<int> deps = {}) {
  GraphNodeSummary n;
  n.ctx = ctx;
  n.step = step;
  n.op = op;
  n.members = std::move(members);
  n.deps = std::move(deps);
  return n;
}

TEST(VerifyGraph, CountMismatchFlagged) {
  std::vector<GraphSummary> gs(2);
  gs[0].world_rank = 0;
  gs[0].nodes = {gnode(7, 0, 0, {0, 1}), gnode(7, 1, 0, {0, 1})};
  gs[1].world_rank = 1;
  gs[1].nodes = {gnode(7, 0, 0, {0, 1})};
  const Report rep = analyze_task_graphs(gs, 1);
  const Finding* f = find_diag(rep, Diag::CollectiveCountMismatch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Error);
}

TEST(VerifyGraph, OrderMismatchFlagged) {
  // Crossed call order: rank 0 runs Bcast then Reduce on the context,
  // rank 1 the reverse.
  std::vector<GraphSummary> gs(2);
  gs[0].world_rank = 0;
  gs[0].nodes = {gnode(7, 0, 0, {0, 1}), gnode(7, 1, 1, {0, 1})};
  gs[1].world_rank = 1;
  gs[1].nodes = {gnode(7, 0, 1, {0, 1}), gnode(7, 1, 0, {0, 1})};
  const Report rep = analyze_task_graphs(gs, 1);
  EXPECT_NE(find_diag(rep, Diag::CollectiveOrderMismatch), nullptr)
      << rep.to_string();
}

std::vector<GraphSummary> window_trap() {
  // Two contexts, issued in opposite per-rank order at adjacent steps.
  // With window 1 each rank's step-1 issue waits on its step-0 completion,
  // which needs the peer's step-1 issue: a cycle. Window >= 2 unblocks it.
  std::vector<GraphSummary> gs(2);
  gs[0].world_rank = 0;
  gs[0].nodes = {gnode(7, 0, 0, {0, 1}), gnode(8, 1, 0, {0, 1})};
  gs[1].world_rank = 1;
  gs[1].nodes = {gnode(8, 0, 0, {0, 1}), gnode(7, 1, 0, {0, 1})};
  return gs;
}

TEST(VerifyGraph, WindowDependentCycleAtWindowOne) {
  const Report rep = analyze_task_graphs(window_trap(), 1);
  const Finding* f = find_diag(rep, Diag::GraphWaitCycle);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("window 1"), std::string::npos) << f->message;
}

TEST(VerifyGraph, WindowDependentCycleClearsAtWindowTwo) {
  const Report rep = analyze_task_graphs(window_trap(), 2);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(find_diag(rep, Diag::GraphWaitCycle), nullptr);
}

TEST(VerifyGraph, WindowZeroClampsToOne) {
  const Report rep = analyze_task_graphs(window_trap(), 0);
  EXPECT_NE(find_diag(rep, Diag::GraphWaitCycle), nullptr);
}

TEST(VerifyGraph, DependencyCycleAcrossInstances) {
  // rank 0: node0 (ctx A) depends on node1 (ctx B); rank 1: node0 (ctx B)
  // depends on node1 (ctx A). Instances tie each pair across ranks:
  // deadlock at every window.
  std::vector<GraphSummary> gs(2);
  gs[0].world_rank = 0;
  gs[0].nodes = {gnode(7, 0, 0, {0, 1}, {1}), gnode(8, 0, 0, {0, 1})};
  gs[1].world_rank = 1;
  gs[1].nodes = {gnode(8, 0, 0, {0, 1}, {1}), gnode(7, 0, 0, {0, 1})};
  const Report rep = analyze_task_graphs(gs, 3);
  const Finding* f = find_diag(rep, Diag::GraphWaitCycle);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->cycle.empty());
}

TEST(VerifyGraph, MatchedGraphsClean) {
  std::vector<GraphSummary> gs(2);
  gs[0].world_rank = 0;
  gs[0].nodes = {gnode(7, 0, 0, {0, 1}), gnode(8, 1, 0, {0, 1})};
  gs[1].world_rank = 1;
  gs[1].nodes = {gnode(7, 0, 0, {0, 1}), gnode(8, 1, 0, {0, 1})};
  const Report rep = analyze_task_graphs(gs, 1);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

// ---- sweep -------------------------------------------------------------

TEST(VerifySweep, AllBuildersCleanSmoke) {
  SweepOptions opts;
  opts.full_space = false;
  const SweepResult res = run_sweep(opts);
  EXPECT_GT(res.entries.size(), 100u);
  EXPECT_EQ(res.total_errors(), 0) << res.summary();
  EXPECT_EQ(res.total_warnings(), 0) << res.summary();
}

TEST(VerifySweep, JsonIsDeterministic) {
  SweepOptions opts;
  opts.graphs = false;  // plan family only: fast
  const SweepResult a = run_sweep(opts);
  const SweepResult b = run_sweep(opts);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"totals\""), std::string::npos);
  EXPECT_TRUE(std::is_sorted(
      a.entries.begin(), a.entries.end(),
      [](const SweepEntry& x, const SweepEntry& y) { return x.name < y.name; }));
}

// ---- runtime gate ------------------------------------------------------

mpi::Request ibcast_for_gate(test::CollHarness& h, mpi::Rank& rank,
                             std::vector<std::vector<std::int32_t>>& bufs) {
  coll::CollConfig cfg;
  cfg.alg = coll::Algorithm::Binomial;
  return h.mods.libnbc().ibcast(
      h.world.world_comm(), rank.world_rank, /*root=*/0,
      mpi::BufView::of(bufs[rank.world_rank], mpi::Datatype::Int32),
      mpi::Datatype::Int32, cfg);
}

TEST(VerifyGate, CheckerSeesEveryFreshPlan) {
  test::CollHarness h(machine::make_aries(2, 2));
  int checked = 0;
  h.rt.set_plan_checker([&](const Plan& plan, int comm_size) {
    ++checked;
    EXPECT_TRUE(analyze_plan(plan, comm_size).clean());
    return std::string();
  });
  const int n = h.world.world_size();
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == 0 ? test::pattern_vec(0, 64)
                     : std::vector<std::int32_t>(64, -1);
  }
  test::run_collective(h.world, [&](mpi::Rank& rank) {
    return ibcast_for_gate(h, rank, bufs);
  });
  EXPECT_GE(checked, 1);
  EXPECT_EQ(bufs[1], test::pattern_vec(0, 64));
}

TEST(VerifyGate, ArmedGateLetsCleanPlansThrough) {
  test::CollHarness h(machine::make_aries(2, 2));
  arm_plan_gate(h.rt);
  const int n = h.world.world_size();
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == 0 ? test::pattern_vec(0, 64)
                     : std::vector<std::int32_t>(64, -1);
  }
  test::run_collective(h.world, [&](mpi::Rank& rank) {
    return ibcast_for_gate(h, rank, bufs);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(bufs[r], test::pattern_vec(0, 64)) << "rank " << r;
  }
}

// ---- striped lookup entries (v4 `sf=` tokens) --------------------------

// A cached striped schedule must be rebuilt on a multi-rail topology:
// on a single-rail rebuild effective_sf clamps to 1 and the stripe
// structure would be verified in name only.
TEST(VerifyLookup, StripedEntriesReverifyOnMultiRailTopology) {
  tune::LookupTable table;
  core::HanConfig cfg;
  cfg.fs = 256 << 10;
  cfg.sf = 2;
  cfg.sched = "bc1:k1:r2:sb1.ib0";
  table.insert(coll::CollKind::Bcast, 2, 2, 1 << 20, cfg);
  // A striped config whose sched id itself carries no :r token still
  // needs the rails (dispatch stripes by HanConfig::sf).
  core::HanConfig cfg2;
  cfg2.fs = 256 << 10;
  cfg2.sf = 4;
  cfg2.sched = "ar1:k1:sr0.ir1.ib2.sb3";
  table.insert(coll::CollKind::Allreduce, 2, 2, 1 << 20, cfg2);

  SweepResult sweep;
  verify_lookup(table, sweep);
  ASSERT_EQ(sweep.entries.size(), 2u);
  EXPECT_EQ(sweep.total_errors(), 0) << sweep.summary();
  EXPECT_EQ(sweep.total_warnings(), 0) << sweep.summary();
  // The rebuilt graphs really carried work (not degraded to no-ops).
  for (const SweepEntry& e : sweep.entries) {
    EXPECT_GT(e.actions, 0) << e.name;
  }
}

TEST(VerifyGateDeathTest, RejectedPlanAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        test::CollHarness h(machine::make_aries(2, 2));
        h.rt.set_plan_checker([](const Plan&, int) {
          return std::string("verify: injected rejection");
        });
        std::vector<std::vector<std::int32_t>> bufs(h.world.world_size());
        for (auto& b : bufs) b.assign(16, 1);
        test::run_collective(h.world, [&](mpi::Rank& rank) {
          return ibcast_for_gate(h, rank, bufs);
        });
      },
      "injected rejection");
}

}  // namespace
}  // namespace han::verify

// han::par — the batched parallel simulation driver: result ordering,
// exception propagation, and the byte-identity contract (--jobs N output
// == serial output) across the verify sweep, the tuner, and synthesis.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "autotune/tuner.hpp"
#include "coll/module.hpp"
#include "coll/runtime.hpp"
#include "han/han.hpp"
#include "han/synth/synth.hpp"
#include "han/verify/sweep.hpp"
#include "machine/machine.hpp"
#include "parallel/pool.hpp"

namespace han {
namespace {

using coll::Algorithm;
using coll::CollKind;

// --- parallel_map plumbing ----------------------------------------------

TEST(ParallelMap, ResultsLandAtInputIndex) {
  const std::vector<int> r =
      par::parallel_map(4, 33, [](int i) { return i * i; });
  ASSERT_EQ(r.size(), 33u);
  for (int i = 0; i < 33; ++i) EXPECT_EQ(r[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelMap, SerialAndParallelAgree) {
  const auto fn = [](int i) { return std::to_string(i * 7 + 3); };
  EXPECT_EQ(par::parallel_map(1, 9, fn), par::parallel_map(3, 9, fn));
}

TEST(ParallelMap, EmptyAndSingleton) {
  EXPECT_TRUE(par::parallel_map(8, 0, [](int i) { return i; }).empty());
  const std::vector<int> one = par::parallel_map(8, 1, [](int i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41);
}

TEST(ParallelMap, ExceptionPropagatesFromWorker) {
  const auto boom = [](int i) -> int {
    if (i == 5) throw std::runtime_error("boom");
    return i;
  };
  EXPECT_THROW(par::parallel_map(4, 8, boom), std::runtime_error);
  EXPECT_THROW(par::parallel_map(1, 8, boom), std::runtime_error);
}

TEST(ParallelMap, ResolveJobs) {
  EXPECT_GE(par::resolve_jobs(0), 1);  // 0 = one per hardware thread
  EXPECT_EQ(par::resolve_jobs(5), 5);
  EXPECT_EQ(par::resolve_jobs(-3), 1);  // clamped
}

TEST(ParallelMap, ParseJobs) {
  EXPECT_EQ(par::parse_jobs("4"), 4);
  EXPECT_EQ(par::parse_jobs("0"), 0);
  EXPECT_EQ(par::parse_jobs("-1"), -1);
  EXPECT_EQ(par::parse_jobs("abc"), -1);
  EXPECT_EQ(par::parse_jobs("4x"), -1);
  EXPECT_EQ(par::parse_jobs(""), -1);
}

// --- byte-identity across the drivers -----------------------------------

TEST(ParallelSweep, ReportByteIdenticalToSerial) {
  verify::SweepOptions o;
  o.full_space = false;  // smoke subset keeps this test fast
  o.windows = {2};
  const std::string serial = verify::run_sweep(o).to_json();
  o.jobs = 4;
  const std::string parallel = verify::run_sweep(o).to_json();
  EXPECT_EQ(serial, parallel);
}

struct TuneHarness {
  explicit TuneHarness(machine::MachineProfile profile)
      : world(std::move(profile)),
        rt(world),
        mods(world, rt),
        han(world, rt, mods) {}
  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
  core::HanModule han;
};

tune::SearchSpace small_space() {
  tune::SearchSpace s;
  s.fs_sizes = {64 << 10, 1 << 20};
  s.adapt_algs = {Algorithm::Chain};
  s.adapt_inter_segments = {64 << 10};
  return s;
}

TEST(ParallelTuner, TableCostAndCountersMatchSerial) {
  tune::TunerOptions o;
  o.message_sizes = {64 << 10, 1 << 20};
  o.kinds = {CollKind::Bcast, CollKind::Allreduce};

  TuneHarness a(machine::make_aries(4, 2));
  tune::Tuner ta(a.world, a.han, a.world.world_comm(), small_space());
  const tune::TuneReport ra = ta.tune(o);  // jobs = 1, the serial path

  o.jobs = 4;
  TuneHarness b(machine::make_aries(4, 2));
  tune::Tuner tb(b.world, b.han, b.world.world_comm(), small_space());
  const tune::TuneReport rb = tb.tune(o);

  EXPECT_EQ(ra.table.serialize(), rb.table.serialize());
  EXPECT_DOUBLE_EQ(ra.tuning_cost, rb.tuning_cost);
  EXPECT_EQ(ra.task_benchmarks, rb.task_benchmarks);
  // Per-job registries merge in kind order, so the tuner's merge-safe
  // counters match the serial run exactly.
  for (const char* name : {"tune.runs", "tune.table_entries",
                           "tune.model_estimates", "tune.cost_seconds"}) {
    EXPECT_DOUBLE_EQ(a.world.metrics().counter(name).value(),
                     b.world.metrics().counter(name).value())
        << name;
  }
}

TEST(ParallelSynth, ReportByteIdenticalToSerial) {
  synth::SynthOptions o;
  o.kinds = {CollKind::Allreduce};
  o.sizes = {64 << 10};
  o.fs_sizes = {64 << 10};
  o.windows = {2};
  o.mutation_rounds = 1;
  o.mutants_per_round = 8;
  o.max_finalists = 4;
  const std::string serial = synth::run_synthesis(o).to_json();
  o.jobs = 2;
  const std::string parallel = synth::run_synthesis(o).to_json();
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace han

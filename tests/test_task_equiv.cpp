// Equivalence suite for the task-graph refactor: graph-built collectives
// must produce byte-identical buffers and identical simulated completion
// times to the seed coroutine programs. The golden timings below were
// captured by running this suite against the seed (pre-refactor) with
// HAN_PRINT_GOLDEN=1; any drift at window=1 is a regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "coll_test_util.hpp"
#include "han/han.hpp"

namespace han::core {
namespace {

using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

using Elems = std::vector<std::int32_t>;

struct EquivHarness : test::CollHarness {
  explicit EquivHarness(machine::MachineProfile profile)
      : CollHarness(std::move(profile), /*data_mode=*/true),
        han(world, rt, mods) {}
  HanModule han;
};

struct Timing {
  double max_t = 0.0;
  double sum_t = 0.0;
};

Timing run_once(EquivHarness& h,
                const std::function<mpi::Request(mpi::Rank&)>& issue) {
  const std::vector<double> done = run_collective(h.world, issue);
  Timing t;
  for (double d : done) {
    EXPECT_GE(d, 0.0);
    t.max_t = std::max(t.max_t, d);
    t.sum_t += d;
  }
  return t;
}

struct Shape {
  const char* tag;
  int nodes, ppn;
};
constexpr Shape kShapes[] = {{"1n4p", 1, 4}, {"2x2", 2, 2}, {"8x4", 8, 4}};

struct SizeCase {
  const char* tag;
  std::size_t bytes;
  bool pipelined;
};
constexpr SizeCase kSizes[] = {{"small", 8 << 10, false},
                               {"pipe", 1 << 20, true}};

// small: one segment (fs > msg), unsegmented libnbc inter + sm intra —
// the seed's small-message shape. pipe: 8 segments of 128 KiB through
// the segmented ADAPT chain — the seed's pipelined shape.
HanConfig equiv_cfg(bool pipelined) {
  HanConfig c;
  c.smod = "sm";
  if (!pipelined) {
    c.fs = 64 << 10;
    c.imod = "libnbc";
    c.ibalg = coll::Algorithm::Binomial;
    c.iralg = coll::Algorithm::Binomial;
    c.ibs = 0;
    c.irs = 0;
  } else {
    c.fs = 128 << 10;
    c.imod = "adapt";
    c.ibalg = coll::Algorithm::Chain;
    c.iralg = coll::Algorithm::Chain;
    c.ibs = 32 << 10;
    c.irs = 32 << 10;
  }
  return c;
}

HanConfig ring_cfg(bool pipelined) {
  HanConfig c = equiv_cfg(pipelined);
  c.imod = "ring";
  return c;
}

struct Golden {
  const char* name;
  double max_t;
  double sum_t;
};

// Captured from the seed coroutine programs (hexfloat, bit-exact). The
// sentinel keeps the array non-empty while regenerating the table.
constexpr Golden kGolden[] = {
    {"__sentinel__", 0.0, 0.0},
    // clang-format off
    // GOLDEN-TABLE-BEGIN
    {"bcast.1n4p.small", 0x1.f3dd7b958a093p-19, 0x1.b1307c74b6403p-17},
    {"bcast.1n4p.pipe", 0x1.063be1c3237cfp-11, 0x1.cae06b1b3d3d8p-10},
    {"bcast.2x2.small", 0x1.26bf516954e2ep-17, 0x1.d14309cdbbde9p-16},
    {"bcast.2x2.pipe", 0x1.2619ffb07e3cbp-12, 0x1.1766f1b4f3145p-10},
    {"bcast.8x4.small", 0x1.2c60a397e6e49p-16, 0x1.aea4420e99f34p-12},
    {"bcast.8x4.pipe", 0x1.cd1aa359a7587p-12, 0x1.a135a7cc38647p-7},
    {"bcast_root5.8x4.pipe", 0x1.cd1aa359a7587p-12, 0x1.a135a7cc38649p-7},
    {"reduce.1n4p.small", 0x1.c5253a65e9832p-17, 0x1.8d4a5cdaebca1p-16},
    {"reduce.1n4p.pipe", 0x1.ccf51b1c7a473p-10, 0x1.a07fd0afd2f75p-9},
    {"reduce.2x2.small", 0x1.d0c048b7f4f54p-17, 0x1.b317ddee99a88p-16},
    {"reduce.2x2.pipe", 0x1.86c8760622f89p-11, 0x1.f90aaf37911f1p-10},
    {"reduce.8x4.small", 0x1.99be417fac171p-15, 0x1.29de0eca5005dp-12},
    {"reduce.8x4.pipe", 0x1.907d39ab934b1p-10, 0x1.6c0ee52d7b69cp-6},
    {"allreduce.1n4p.small", 0x1.210e4ca5a602bp-16, 0x1.18b8acc18b899p-14},
    {"allreduce.1n4p.pipe", 0x1.280985ff0602dp-9, 0x1.1fd69af1a4cb4p-7},
    {"allreduce.2x2.small", 0x1.7bbfcd10a4ec1p-16, 0x1.5cb0e6cf69724p-14},
    {"allreduce.2x2.pipe", 0x1.c21b84b78e593p-11, 0x1.bac1fdb9c8c5p-9},
    {"allreduce.8x4.small", 0x1.17f749a5cfc4ap-14, 0x1.02b3a901a949fp-9},
    {"allreduce.8x4.pipe", 0x1.197ed0787c29bp-9, 0x1.14023106ce4afp-4},
    {"ml_allreduce.1n4p.small", 0x1.210e4ca5a602bp-16, 0x1.18b8acc18b899p-14},
    {"ml_allreduce.1n4p.pipe", 0x1.280985ff0602dp-9, 0x1.1fd69af1a4cb4p-7},
    {"ml_allreduce.2x2.small", 0x1.7bbfcd10a4ec1p-16, 0x1.5cb0e6cf69724p-14},
    {"ml_allreduce.2x2.pipe", 0x1.ac5b399dbae9cp-11, 0x1.a5192f943cbaap-9},
    {"ml_allreduce.8x4.small", 0x1.17f749a5cfc4ap-14, 0x1.02b3a901a949fp-9},
    {"ml_allreduce.8x4.pipe", 0x1.f9a90c23f6df6p-10, 0x1.eec3131f7a574p-5},
    {"rs_tree.1n4p.small", 0x1.289cabbdbb17bp-16, 0x1.1d1f55872e1e4p-14},
    {"rs_tree.1n4p.pipe", 0x1.0eb592442c866p-9, 0x1.061b9cb1902e8p-7},
    {"rs_tree.2x2.small", 0x1.5cb975b560256p-16, 0x1.4e4332af7373cp-14},
    {"rs_tree.2x2.pipe", 0x1.052e8dcdc641ep-10, 0x1.051710d97edccp-8},
    {"rs_tree.8x4.small", 0x1.db3ce0dade7bap-15, 0x1.cff59629c67c5p-10},
    {"rs_tree.8x4.pipe", 0x1.bb4f5d938707dp-10, 0x1.afd46a6a1eebp-5},
    {"rs_ring.2x2.small", 0x1.b6e448c0398a9p-17, 0x1.ab4b07b65352p-15},
    {"rs_ring.2x2.pipe", 0x1.a9b4abd4cd63fp-11, 0x1.a99d2ee085feep-9},
    {"rs_ring.8x4.small", 0x1.168c00331faf8p-15, 0x1.1385799a52d88p-10},
    {"rs_ring.8x4.pipe", 0x1.6056bbc62c124p-10, 0x1.5e2b1b0c155e3p-5},
    {"gather.1n4p.small", 0x1.1397ff016f078p-18, 0x1.56696b50ae157p-17},
    {"gather.1n4p.pipe", 0x1.a7a4381cebb7dp-14, 0x1.a4f7b57281ec6p-12},
    {"gather.2x2.small", 0x1.c037397d6fd45p-18, 0x1.12fcd10216fp-16},
    {"gather.2x2.pipe", 0x1.c7d20f98c44acp-13, 0x1.4c894077b58bfp-11},
    {"gather.8x4.small", 0x1.3debe98aad1e8p-17, 0x1.6366274426d86p-14},
    {"gather.8x4.pipe", 0x1.1aafdc4e1655p-13, 0x1.704e38bb0df0dp-10},
    {"scatter.1n4p.small", 0x1.18283a2b19589p-18, 0x1.d465c2a1cae5cp-17},
    {"scatter.1n4p.pipe", 0x1.41d825af7b166p-12, 0x1.fa10f23530adfp-11},
    {"scatter.2x2.small", 0x1.d165456596aafp-18, 0x1.978c394de3e47p-16},
    {"scatter.2x2.pipe", 0x1.07294b2ad3164p-12, 0x1.06cb5759b581ep-10},
    {"scatter.8x4.small", 0x1.05fa7d6cc991dp-17, 0x1.b1baa550d329ap-13},
    {"scatter.8x4.pipe", 0x1.5584afc59287p-13, 0x1.f35a2cf4a3417p-9},
    {"allgather.1n4p.small", 0x1.047e868a64e5p-17, 0x1.047e868a64e5p-15},
    {"allgather.1n4p.pipe", 0x1.4815569271f13p-12, 0x1.4815569271f13p-10},
    {"allgather.2x2.small", 0x1.851b55f6b7a58p-17, 0x1.63c4d6664dc1p-15},
    {"allgather.2x2.pipe", 0x1.acf7b2452fd1cp-11, 0x1.6b6059da26155p-9},
    {"allgather.8x4.small", 0x1.b5d86b99a1d41p-16, 0x1.ad82cbb5875bp-11},
    {"allgather.8x4.pipe", 0x1.be693bc7d8f86p-11, 0x1.9d9d8f92541a1p-6},
    {"barrier.1n4p", 0x1.6a634b28f33e4p-20, 0x1.457a5d942fcd4p-18},
    {"barrier.2x2", 0x1.09147bb80742fp-18, 0x1.ed4009db4b14ep-17},
    {"barrier.8x4", 0x1.2aa26af9731e1p-17, 0x1.26054d46dabp-12},
    {"bcast3.2n4p2d.small", 0x1.b47e84638339cp-17, 0x1.5509ca16976e2p-14},
    {"bcast3.2n4p2d.pipe", 0x1.1f01265a1836bp-13, 0x1.170064db93aecp-10},
    {"bcast3.4n8p2d.small", 0x1.2364c15008408p-16, 0x1.bd05ca3b38532p-12},
    {"bcast3.4n8p2d.pipe", 0x1.ad6503e5a4c2dp-13, 0x1.9a9c10dbf82a6p-8},
    {"allreduce3.2n4p2d.small", 0x1.f472d9c54e34bp-16, 0x1.c4b87c9ed84edp-13},
    {"allreduce3.2n4p2d.pipe", 0x1.7afa9e79303b3p-12, 0x1.76fa3db9edf74p-9},
    {"allreduce3.4n8p2d.small", 0x1.967ac21a8fap-15, 0x1.7409d40159949p-10},
    {"allreduce3.4n8p2d.pipe", 0x1.43768a97dc223p-11, 0x1.40394d93d5b96p-6},
    // GOLDEN-TABLE-END
    // clang-format on
};

void check_golden(const std::string& name, const Timing& t) {
  if (std::getenv("HAN_PRINT_GOLDEN") != nullptr) {
    std::printf("    {\"%s\", %a, %a},\n", name.c_str(), t.max_t, t.sum_t);
    std::fflush(stdout);
    return;
  }
  for (const Golden& g : kGolden) {
    if (name == g.name) {
      EXPECT_NEAR(t.max_t, g.max_t, std::abs(g.max_t) * 1e-12 + 1e-15)
          << name << " max completion time drifted from seed";
      EXPECT_NEAR(t.sum_t, g.sum_t, std::abs(g.sum_t) * 1e-12 + 1e-15)
          << name << " summed completion times drifted from seed";
      return;
    }
  }
  ADD_FAILURE() << "no golden timing recorded for scenario " << name;
}

std::string scenario_name(const char* kind, const Shape& s,
                          const SizeCase& z) {
  return std::string(kind) + "." + s.tag + "." + z.tag;
}

// --- two-level kinds ------------------------------------------------------

TEST(TaskEquiv, Bcast) {
  for (const Shape& s : kShapes) {
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t count = z.bytes / sizeof(std::int32_t);
      const int root = 0;
      std::vector<Elems> bufs(n);
      for (int r = 0; r < n; ++r) {
        bufs[r] = r == root ? pattern_vec(root, count) : Elems(count, -1);
      }
      const HanConfig cfg = equiv_cfg(z.pipelined);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, root,
                                BufView::of(bufs[rank.world_rank],
                                            Datatype::Int32),
                                Datatype::Int32, cfg);
      });
      const Elems expect = pattern_vec(root, count);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(bufs[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("bcast", s, z), t);
    }
  }
}

TEST(TaskEquiv, BcastNonzeroRoot) {
  // root on another node, non-leader low rank: exercises root_low logic.
  const Shape s{"8x4", 8, 4};
  const SizeCase z = kSizes[1];
  EquivHarness h(machine::make_aries(s.nodes, s.ppn));
  const int n = h.world.world_size();
  const std::size_t count = z.bytes / sizeof(std::int32_t);
  const int root = 5;
  std::vector<Elems> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == root ? pattern_vec(root, count) : Elems(count, -1);
  }
  const HanConfig cfg = equiv_cfg(z.pipelined);
  const Timing t = run_once(h, [&](mpi::Rank& rank) {
    return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, root,
                            BufView::of(bufs[rank.world_rank],
                                        Datatype::Int32),
                            Datatype::Int32, cfg);
  });
  const Elems expect = pattern_vec(root, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
  check_golden("bcast_root5.8x4.pipe", t);
}

TEST(TaskEquiv, Reduce) {
  for (const Shape& s : kShapes) {
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t count = z.bytes / sizeof(std::int32_t);
      const int root = 0;
      std::vector<Elems> send(n), recv(n);
      for (int r = 0; r < n; ++r) {
        send[r] = pattern_vec(r, count);
        recv[r] = Elems(count, -1);
      }
      const HanConfig cfg = equiv_cfg(z.pipelined);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.ireduce_cfg(h.world.world_comm(), r, root,
                                 BufView::of(send[r], Datatype::Int32),
                                 BufView::of(recv[r], Datatype::Int32),
                                 Datatype::Int32, ReduceOp::Sum, cfg);
      });
      EXPECT_EQ(recv[root], expected_reduce(ReduceOp::Sum, n, count));
      check_golden(scenario_name("reduce", s, z), t);
    }
  }
}

TEST(TaskEquiv, Allreduce) {
  for (const Shape& s : kShapes) {
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t count = z.bytes / sizeof(std::int32_t);
      std::vector<Elems> send(n), recv(n);
      for (int r = 0; r < n; ++r) {
        send[r] = pattern_vec(r, count);
        recv[r] = Elems(count, -1);
      }
      const HanConfig cfg = equiv_cfg(z.pipelined);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.iallreduce_cfg(h.world.world_comm(), r,
                                    BufView::of(send[r], Datatype::Int32),
                                    BufView::of(recv[r], Datatype::Int32),
                                    Datatype::Int32, ReduceOp::Sum, cfg);
      });
      const Elems expect = expected_reduce(ReduceOp::Sum, n, count);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(recv[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("allreduce", s, z), t);
    }
  }
}

TEST(TaskEquiv, MultiLeaderAllreduce) {
  for (const Shape& s : kShapes) {
    if (s.ppn < 2) continue;
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t count = z.bytes / sizeof(std::int32_t);
      std::vector<Elems> send(n), recv(n);
      for (int r = 0; r < n; ++r) {
        send[r] = pattern_vec(r, count);
        recv[r] = Elems(count, -1);
      }
      const HanConfig cfg = equiv_cfg(z.pipelined);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.iallreduce_multileader(
            h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
            BufView::of(recv[r], Datatype::Int32), Datatype::Int32,
            ReduceOp::Sum, cfg, /*leaders=*/2);
      });
      const Elems expect = expected_reduce(ReduceOp::Sum, n, count);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(recv[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("ml_allreduce", s, z), t);
    }
  }
}

TEST(TaskEquiv, ReduceScatterTree) {
  for (const Shape& s : kShapes) {
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t count = z.bytes / sizeof(std::int32_t);
      const std::size_t block = count / static_cast<std::size_t>(n);
      std::vector<Elems> send(n), recv(n);
      for (int r = 0; r < n; ++r) {
        send[r] = pattern_vec(r, count);
        recv[r] = Elems(block, -1);
      }
      const HanConfig cfg = equiv_cfg(z.pipelined);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.ireduce_scatter_cfg(
            h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
            BufView::of(recv[r], Datatype::Int32), Datatype::Int32,
            ReduceOp::Sum, cfg);
      });
      const Elems full = expected_reduce(ReduceOp::Sum, n, count);
      for (int r = 0; r < n; ++r) {
        const Elems expect(full.begin() + static_cast<long>(block) * r,
                           full.begin() + static_cast<long>(block) * (r + 1));
        EXPECT_EQ(recv[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("rs_tree", s, z), t);
    }
  }
}

TEST(TaskEquiv, ReduceScatterRing) {
  for (const Shape& s : kShapes) {
    if (s.nodes < 2) continue;  // 1-node ring degenerates to the tree path
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t count = z.bytes / sizeof(std::int32_t);
      const std::size_t block = count / static_cast<std::size_t>(n);
      std::vector<Elems> send(n), recv(n);
      for (int r = 0; r < n; ++r) {
        send[r] = pattern_vec(r, count);
        recv[r] = Elems(block, -1);
      }
      const HanConfig cfg = ring_cfg(z.pipelined);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.ireduce_scatter_cfg(
            h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
            BufView::of(recv[r], Datatype::Int32), Datatype::Int32,
            ReduceOp::Sum, cfg);
      });
      const Elems full = expected_reduce(ReduceOp::Sum, n, count);
      for (int r = 0; r < n; ++r) {
        const Elems expect(full.begin() + static_cast<long>(block) * r,
                           full.begin() + static_cast<long>(block) * (r + 1));
        EXPECT_EQ(recv[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("rs_ring", s, z), t);
    }
  }
}

TEST(TaskEquiv, Gather) {
  for (const Shape& s : kShapes) {
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t block = z.bytes / sizeof(std::int32_t) /
                                static_cast<std::size_t>(n);
      const int root = 0;
      std::vector<Elems> send(n);
      for (int r = 0; r < n; ++r) send[r] = pattern_vec(r, block);
      Elems recv(block * static_cast<std::size_t>(n), -1);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.igather(h.world.world_comm(), r, root,
                             BufView::of(send[r], Datatype::Int32),
                             r == root ? BufView::of(recv, Datatype::Int32)
                                       : BufView{},
                             coll::CollConfig{});
      });
      for (int r = 0; r < n; ++r) {
        const Elems expect = pattern_vec(r, block);
        const Elems got(recv.begin() + static_cast<long>(block) * r,
                        recv.begin() + static_cast<long>(block) * (r + 1));
        EXPECT_EQ(got, expect) << "rank " << r;
      }
      check_golden(scenario_name("gather", s, z), t);
    }
  }
}

TEST(TaskEquiv, Scatter) {
  for (const Shape& s : kShapes) {
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t block = z.bytes / sizeof(std::int32_t) /
                                static_cast<std::size_t>(n);
      const int root = 0;
      Elems send = pattern_vec(root, block * static_cast<std::size_t>(n));
      std::vector<Elems> recv(n);
      for (int r = 0; r < n; ++r) recv[r] = Elems(block, -1);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.iscatter(h.world.world_comm(), r, root,
                              r == root ? BufView::of(send, Datatype::Int32)
                                        : BufView{},
                              BufView::of(recv[r], Datatype::Int32),
                              coll::CollConfig{});
      });
      for (int r = 0; r < n; ++r) {
        const Elems expect(send.begin() + static_cast<long>(block) * r,
                           send.begin() + static_cast<long>(block) * (r + 1));
        EXPECT_EQ(recv[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("scatter", s, z), t);
    }
  }
}

TEST(TaskEquiv, Allgather) {
  for (const Shape& s : kShapes) {
    for (const SizeCase& z : kSizes) {
      EquivHarness h(machine::make_aries(s.nodes, s.ppn));
      const int n = h.world.world_size();
      const std::size_t block = z.bytes / sizeof(std::int32_t) /
                                static_cast<std::size_t>(n);
      std::vector<Elems> send(n), recv(n);
      for (int r = 0; r < n; ++r) {
        send[r] = pattern_vec(r, block);
        recv[r] = Elems(block * static_cast<std::size_t>(n), -1);
      }
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.iallgather(h.world.world_comm(), r,
                                BufView::of(send[r], Datatype::Int32),
                                BufView::of(recv[r], Datatype::Int32),
                                coll::CollConfig{});
      });
      Elems expect;
      for (int r = 0; r < n; ++r) {
        const Elems part = pattern_vec(r, block);
        expect.insert(expect.end(), part.begin(), part.end());
      }
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(recv[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("allgather", s, z), t);
    }
  }
}

TEST(TaskEquiv, Barrier) {
  for (const Shape& s : kShapes) {
    EquivHarness h(machine::make_aries(s.nodes, s.ppn));
    const Timing t = run_once(h, [&](mpi::Rank& rank) {
      return h.han.ibarrier(h.world.world_comm(), rank.world_rank);
    });
    check_golden(std::string("barrier.") + s.tag, t);
  }
}

// --- three-level (NUMA) kinds ---------------------------------------------
//
// On a NUMA-split machine the default cfg (lvl = 0) derives the 3-level
// numa < node < cluster ladder; the goldens were captured against the
// retired hand-written Han3 builders, so they also pin the generalized
// builder's depth-3 output to the old node-for-node behavior.

HanConfig cfg3(bool pipelined) {
  HanConfig c;
  c.smod = "sm";
  c.imod = "adapt";
  c.ibalg = coll::Algorithm::Binary;
  c.iralg = coll::Algorithm::Binary;
  if (!pipelined) {
    c.fs = 64 << 10;
  } else {
    c.fs = 32 << 10;
    c.ibs = 16 << 10;
    c.irs = 16 << 10;
  }
  return c;
}

constexpr Shape kShapes3[] = {{"2n4p2d", 2, 4}, {"4n8p2d", 4, 8}};
constexpr SizeCase kSizes3[] = {{"small", 8 << 10, false},
                                {"pipe", 256 << 10, true}};

TEST(TaskEquiv, Bcast3) {
  for (const Shape& s : kShapes3) {
    for (const SizeCase& z : kSizes3) {
      EquivHarness h(
          machine::with_numa(machine::make_aries(s.nodes, s.ppn), 2));
      ASSERT_EQ(h.han.hierarchy(h.world.world_comm()).depth(), 3);
      const int n = h.world.world_size();
      const std::size_t count = z.bytes / sizeof(std::int32_t);
      const int root = 0;
      std::vector<Elems> bufs(n);
      for (int r = 0; r < n; ++r) {
        bufs[r] = r == root ? pattern_vec(root, count) : Elems(count, -1);
      }
      const HanConfig cfg = cfg3(z.pipelined);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, root,
                                BufView::of(bufs[rank.world_rank],
                                            Datatype::Int32),
                                Datatype::Int32, cfg);
      });
      const Elems expect = pattern_vec(root, count);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(bufs[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("bcast3", s, z), t);
    }
  }
}

TEST(TaskEquiv, Allreduce3) {
  for (const Shape& s : kShapes3) {
    for (const SizeCase& z : kSizes3) {
      EquivHarness h(
          machine::with_numa(machine::make_aries(s.nodes, s.ppn), 2));
      ASSERT_EQ(h.han.hierarchy(h.world.world_comm()).depth(), 3);
      const int n = h.world.world_size();
      const std::size_t count = z.bytes / sizeof(std::int32_t);
      std::vector<Elems> send(n), recv(n);
      for (int r = 0; r < n; ++r) {
        send[r] = pattern_vec(r, count);
        recv[r] = Elems(count, -1);
      }
      const HanConfig cfg = cfg3(z.pipelined);
      const Timing t = run_once(h, [&](mpi::Rank& rank) {
        const int r = rank.world_rank;
        return h.han.iallreduce_cfg(h.world.world_comm(), r,
                                    BufView::of(send[r], Datatype::Int32),
                                    BufView::of(recv[r], Datatype::Int32),
                                    Datatype::Int32, ReduceOp::Sum, cfg);
      });
      const Elems expect = expected_reduce(ReduceOp::Sum, n, count);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(recv[r], expect) << "rank " << r;
      }
      check_golden(scenario_name("allreduce3", s, z), t);
    }
  }
}

}  // namespace
}  // namespace han::core

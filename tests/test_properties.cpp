// Property-based suites: randomized payload sweeps over HAN collectives,
// simulator determinism, flow conservation, and matching-order invariants.
#include <gtest/gtest.h>

#include <numeric>

#include "autotune/tuner.hpp"
#include "coll_test_util.hpp"
#include "simbase/rng.hpp"

namespace han {
namespace {

using coll::Algorithm;
using coll::CollConfig;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

struct HanHarness : test::CollHarness {
  explicit HanHarness(machine::MachineProfile profile, bool data_mode = true)
      : CollHarness(std::move(profile), data_mode), han(world, rt, mods) {}
  core::HanModule han;
};

// --- randomized HAN sweeps (property: correctness for arbitrary shapes,
// sizes, configs, roots, and arrival skews) -------------------------------

class HanRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(HanRandomSweep, BcastReduceAllreduceAgree) {
  sim::Rng rng(0xC0FFEE + GetParam());
  const int nodes = 1 + static_cast<int>(rng.next_below(5));
  const int ppn = 1 + static_cast<int>(rng.next_below(6));
  HanHarness h(machine::make_aries(nodes, ppn));
  const int n = h.world.world_size();
  const std::size_t count = 1 + rng.next_below(5000);
  const int root = static_cast<int>(rng.next_below(n));

  core::HanConfig cfg;
  cfg.fs = std::size_t(64) << rng.next_below(8);  // 64B .. 8KB
  cfg.imod = rng.next_below(2) == 0 ? "libnbc" : "adapt";
  cfg.smod = rng.next_below(2) == 0 ? "sm" : "solo";
  const Algorithm algs[] = {Algorithm::Chain, Algorithm::Binary,
                            Algorithm::Binomial};
  cfg.ibalg = cfg.imod == "adapt" ? algs[rng.next_below(3)]
                                  : Algorithm::Binomial;
  cfg.iralg = cfg.ibalg;
  cfg.ibs = rng.next_below(2) == 0 ? 0 : 1024;
  cfg.irs = cfg.ibs;

  // Random per-rank arrival skew (MPI semantics: correctness must not
  // depend on arrival times).
  std::vector<double> skew(n);
  for (double& s : skew) s = rng.next_double() * 20e-6;

  // Bcast.
  {
    std::vector<std::vector<std::int32_t>> bufs(n);
    for (int r = 0; r < n; ++r) {
      bufs[r] = r == root ? pattern_vec(root, count)
                          : std::vector<std::int32_t>(count, -1);
    }
    run_collective(
        h.world,
        [&](mpi::Rank& rank) {
          return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank,
                                  root,
                                  BufView::of(bufs[rank.world_rank],
                                              Datatype::Int32),
                                  Datatype::Int32, cfg);
        },
        [&](int r) { return skew[r]; });
    const auto expect = pattern_vec(root, count);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(bufs[r], expect) << "bcast rank " << r << " cfg "
                                 << cfg.to_string();
    }
  }

  // Reduce + Allreduce share inputs; allreduce result must equal the
  // reduce result at every rank.
  {
    std::vector<std::vector<std::int32_t>> send(n), recv(n), arecv(n);
    for (int r = 0; r < n; ++r) {
      send[r] = pattern_vec(r, count);
      recv[r].assign(count, 0);
      arecv[r].assign(count, 0);
    }
    run_collective(h.world, [&](mpi::Rank& rank) {
      const int r = rank.world_rank;
      return h.han.ireduce_cfg(h.world.world_comm(), r, root,
                               BufView::of(send[r], Datatype::Int32),
                               BufView::of(recv[r], Datatype::Int32),
                               Datatype::Int32, ReduceOp::Sum, cfg);
    });
    run_collective(
        h.world,
        [&](mpi::Rank& rank) {
          const int r = rank.world_rank;
          return h.han.iallreduce_cfg(h.world.world_comm(), r,
                                      BufView::of(send[r], Datatype::Int32),
                                      BufView::of(arecv[r], Datatype::Int32),
                                      Datatype::Int32, ReduceOp::Sum, cfg);
        },
        [&](int r) { return skew[(r + 1) % n]; });
    const auto expect = expected_reduce(ReduceOp::Sum, n, count);
    ASSERT_EQ(recv[root], expect) << "reduce cfg " << cfg.to_string();
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(arecv[r], expect) << "allreduce rank " << r << " cfg "
                                  << cfg.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HanRandomSweep, ::testing::Range(0, 12));

// --- determinism ----------------------------------------------------------

TEST(Determinism, IdenticalRunsProduceIdenticalClocks) {
  auto run_once = [] {
    HanHarness h(machine::make_aries(4, 4), /*data_mode=*/false);
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.iallreduce(h.world.world_comm(), rank.world_rank,
                              BufView::timing_only(1 << 20),
                              BufView::timing_only(1 << 20), Datatype::Byte,
                              ReduceOp::Sum, CollConfig{});
    });
    return std::make_pair(done, h.world.engine().events_processed());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.second, b.second) << "event counts must match";
  for (int r = 0; r < 16; ++r) {
    EXPECT_DOUBLE_EQ(a.first[r], b.first[r]) << "rank " << r;
  }
}

TEST(Determinism, TaskBenchRepeatable) {
  // The autotuner's decisions must be reproducible across runs.
  auto tune_once = [] {
    HanHarness h(machine::make_aries(4, 4), false);
    tune::Tuner tuner(h.world, h.han, h.world.world_comm());
    tune::TunerOptions opt;
    opt.message_sizes = {256 << 10, 4 << 20};
    opt.kinds = {coll::CollKind::Bcast};
    return tuner.tune(opt).table.serialize();
  };
  EXPECT_EQ(tune_once(), tune_once());
}

// --- concurrency & isolation ----------------------------------------------

TEST(Concurrency, OverlappingCollectivesOnDistinctComms) {
  // Two HAN bcasts on disjoint halves of the machine run concurrently and
  // deliver correct data.
  HanHarness h(machine::make_aries(4, 4));
  const int n = 16;
  std::vector<int> color(n), key(n);
  for (int r = 0; r < n; ++r) {
    color[r] = r < 8 ? 0 : 1;  // nodes {0,1} vs {2,3}
    key[r] = r;
  }
  auto comms = h.world.comm_split(h.world.world_comm(), color, key);

  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    const int group_root = r < 8 ? 0 : 8;
    bufs[r] = r == group_root ? pattern_vec(group_root, 512)
                              : std::vector<std::int32_t>(512, -1);
  }
  h.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](HanHarness& h3, std::vector<mpi::Comm*>& comms2,
              std::vector<std::vector<std::int32_t>>& bufs3,
              int me) -> sim::CoTask {
      mpi::Comm& comm = *comms2[me];
      mpi::Request r = h3.han.ibcast(comm, comm.comm_rank_of_world(me), 0,
                                    BufView::of(bufs3[me], Datatype::Int32),
                                    Datatype::Int32, CollConfig{});
      co_await *r;
    }(h, comms, bufs, rank.world_rank);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(bufs[r], pattern_vec(r < 8 ? 0 : 8, 512)) << "rank " << r;
  }
}

TEST(Concurrency, BackToBackCollectivesKeepOrder) {
  // Issue 4 pipelined bcasts per rank before awaiting any: instance
  // matching by call order must pair them correctly.
  HanHarness h(machine::make_aries(2, 3));
  const int n = 6;
  std::vector<std::vector<std::vector<std::int32_t>>> bufs(
      4, std::vector<std::vector<std::int32_t>>(n));
  for (int i = 0; i < 4; ++i) {
    for (int r = 0; r < n; ++r) {
      bufs[i][r] = r == 0 ? pattern_vec(i + 10, 128)
                          : std::vector<std::int32_t>(128, -1);
    }
  }
  h.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](HanHarness& h2,
              std::vector<std::vector<std::vector<std::int32_t>>>& bufs2,
              int me) -> sim::CoTask {
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < 4; ++i) {
        reqs.push_back(h2.han.ibcast(
            h2.world.world_comm(), me, 0,
            BufView::of(bufs2[i][me], Datatype::Int32), Datatype::Int32,
            CollConfig{}));
      }
      co_await mpi::wait_all(h2.world.engine(), std::move(reqs));
    }(h, bufs, rank.world_rank);
  });
  for (int i = 0; i < 4; ++i) {
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(bufs[i][r], pattern_vec(i + 10, 128))
          << "op " << i << " rank " << r;
    }
  }
}

// --- P2P ordering property ---------------------------------------------------

TEST(P2pOrdering, SameTagMessagesArriveInSendOrder) {
  // MPI non-overtaking: k same-tag messages between one pair must match
  // posted receives in order.
  mpi::SimWorld::Options o;
  o.data_mode = true;
  mpi::SimWorld w(machine::make_aries(2, 1), o);
  const int k = 8;
  std::vector<std::vector<std::int32_t>> out(k);
  for (int i = 0; i < k; ++i) out[i] = {i * 111};
  std::vector<std::vector<std::int32_t>> in(k, std::vector<std::int32_t>{-1});

  w.run([&](mpi::Rank& rank) -> sim::CoTask {
    if (rank.world_rank == 0) {
      return [](mpi::SimWorld& w3, std::vector<std::vector<std::int32_t>>& out2,
                int k3) -> sim::CoTask {
        std::vector<mpi::Request> rs;
        for (int i = 0; i < k3; ++i) {
          rs.push_back(w3.isend(w3.world_comm(), 0, 1, /*tag=*/7,
                               BufView::of(out2[i], Datatype::Int32)));
        }
        co_await mpi::wait_all(w3.engine(), std::move(rs));
      }(w, out, k);
    }
    return [](mpi::SimWorld& w2, std::vector<std::vector<std::int32_t>>& in2,
              int k2) -> sim::CoTask {
      std::vector<mpi::Request> rs;
      for (int i = 0; i < k2; ++i) {
        rs.push_back(w2.irecv(w2.world_comm(), 1, 0, /*tag=*/7,
                             BufView::of(in2[i], Datatype::Int32)));
      }
      co_await mpi::wait_all(w2.engine(), std::move(rs));
    }(w, in, k);
  });
  for (int i = 0; i < k; ++i) EXPECT_EQ(in[i][0], i * 111) << "msg " << i;
}

// --- flownet conservation -----------------------------------------------------

TEST(FlowConservation, BytesDeliveredMatchBytesSent) {
  // Total simulated transfer time x rate must equal bytes for a lone flow
  // even across capacity changes mid-flight.
  sim::Engine e;
  net::FlowNet fn(e);
  const net::ResourceId r = fn.add_resource("link", 1000.0);
  double done_at = -1.0;
  const net::ResourceId path[] = {r};
  fn.start_flow(path, 5000.0, net::FlowNet::no_cap(),
                [&] { done_at = e.now(); });
  e.schedule_at(1.0, [&] { fn.set_capacity(r, 500.0); });
  e.schedule_at(3.0, [&] { fn.set_capacity(r, 2000.0); });
  e.run();
  // 1s @1000 + 2s @500 + (5000-2000)/2000 = 1 + 2 + 1.5 = 4.5
  EXPECT_NEAR(done_at, 4.5, 1e-9);
}



// --- randomized gather/scatter/allgather sweeps ------------------------------

class HanRootedSweep : public ::testing::TestWithParam<int> {};

TEST_P(HanRootedSweep, GatherScatterAllgatherRoundTrip) {
  sim::Rng rng(0xBEEF + GetParam());
  const int nodes = 1 + static_cast<int>(rng.next_below(4));
  const int ppn = 1 + static_cast<int>(rng.next_below(5));
  HanHarness h(machine::make_aries(nodes, ppn));
  const int n = h.world.world_size();
  const std::size_t count = 1 + rng.next_below(400);
  const int root = static_cast<int>(rng.next_below(n));

  // Gather then scatter must round-trip the blocks.
  std::vector<std::vector<std::int32_t>> send(n), back(n);
  std::vector<std::int32_t> gathered(count * n, -1);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    back[r].assign(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.igather(h.world.world_comm(), r, root,
                         BufView::of(send[r], Datatype::Int32),
                         r == root ? BufView::of(gathered, Datatype::Int32)
                                   : BufView::timing_only(gathered.size() * 4),
                         CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(gathered[r * count + i], test::pattern(r, i))
          << "gather block " << r;
    }
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iscatter(h.world.world_comm(), r, root,
                          r == root ? BufView::of(gathered, Datatype::Int32)
                                    : BufView::timing_only(gathered.size() * 4),
                          BufView::of(back[r], Datatype::Int32),
                          CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(back[r], send[r]) << "scatter round-trip rank " << r;
  }

  // Allgather must equal the root's gathered image at every rank.
  std::vector<std::vector<std::int32_t>> all(n);
  for (int r = 0; r < n; ++r) all[r].assign(count * n, -1);
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallgather(h.world.world_comm(), r,
                            BufView::of(send[r], Datatype::Int32),
                            BufView::of(all[r], Datatype::Int32),
                            CollConfig{});
  });
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(all[r], gathered) << "allgather rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HanRootedSweep, ::testing::Range(0, 8));


// --- jitter ---------------------------------------------------------------

TEST(Jitter, ZeroJitterIsBitIdentical) {
  auto run_once = [](double jitter, std::uint64_t seed) {
    machine::MachineProfile prof = machine::make_aries(2, 4);
    prof.jitter = jitter;
    mpi::SimWorld::Options o;
    o.jitter_seed = seed;
    HanHarness h(prof, false);
    (void)o;  // HanHarness wraps options; re-run directly below
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ibcast(h.world.world_comm(), rank.world_rank, 0,
                          BufView::timing_only(256 << 10), Datatype::Byte,
                          CollConfig{});
    });
    return *std::max_element(done.begin(), done.end());
  };
  EXPECT_DOUBLE_EQ(run_once(0.0, 1), run_once(0.0, 2));
}

TEST(Jitter, NoisePerturbsButStaysDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    machine::MachineProfile prof = machine::make_aries(2, 4);
    prof.jitter = 0.15;
    mpi::SimWorld::Options o;
    o.data_mode = false;
    o.jitter_seed = seed;
    mpi::SimWorld world(prof, o);
    coll::CollRuntime rt(world);
    coll::ModuleSet mods(world, rt);
    core::HanModule han(world, rt, mods);
    auto done = std::make_shared<double>(0.0);
    world.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w, core::HanModule& han2,
                std::shared_ptr<double> done2, int me) -> sim::CoTask {
        mpi::Request r = han2.ibcast(w.world_comm(), me, 0,
                                    BufView::timing_only(256 << 10),
                                    Datatype::Byte, CollConfig{});
        co_await *r;
        *done2 = std::max(*done2, w.now());
      }(world, han, done, rank.world_rank);
    });
    return *done;
  };
  const double a1 = run_once(11);
  const double a2 = run_once(11);
  const double b = run_once(99);
  EXPECT_DOUBLE_EQ(a1, a2) << "same seed => identical";
  EXPECT_NE(a1, b) << "different seed => different timing";
}

// --- multi-leader extension ---------------------------------------------------

class MultiLeaderSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiLeaderSweep, AllreduceCorrectForAnyLeaderCount) {
  const int k = GetParam();
  HanHarness h(machine::make_aries(3, 4));
  const int n = 12;
  const std::size_t count = 3000;  // 12KB: several segments at fs=4K
  core::HanConfig cfg;
  cfg.fs = 4 << 10;
  cfg.imod = "adapt";
  cfg.smod = "sm";
  cfg.ibalg = Algorithm::Binary;
  cfg.iralg = Algorithm::Binary;

  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallreduce_multileader(
        h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
        BufView::of(recv[r], Datatype::Int32), Datatype::Int32,
        ReduceOp::Sum, cfg, k);
  });
  const auto expect = expected_reduce(ReduceOp::Sum, n, count);
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(recv[r], expect) << "k=" << k << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(LeaderCounts, MultiLeaderSweep,
                         ::testing::Values(1, 2, 3, 4, 8 /* clamped */));

TEST(MultiLeader, SingleNodeFallsBack) {
  HanHarness h(machine::make_aries(1, 4));
  std::vector<std::vector<std::int32_t>> send(4), recv(4);
  for (int r = 0; r < 4; ++r) {
    send[r] = pattern_vec(r, 100);
    recv[r].assign(100, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallreduce_multileader(
        h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
        BufView::of(recv[r], Datatype::Int32), Datatype::Int32,
        ReduceOp::Sum, core::HanConfig{}, 3);
  });
  const auto expect = expected_reduce(ReduceOp::Sum, 4, 100);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(recv[r], expect);
}

}  // namespace
}  // namespace han

// Shared helpers for collective-layer tests: run a collective across all
// world ranks (optionally with per-rank start skew) and verify payloads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "coll/registry.hpp"
#include "coll/runtime.hpp"
#include "simmpi/world.hpp"

namespace han::test {

/// A simulated world plus the collective machinery, in data mode by
/// default so tests check real payloads.
struct CollHarness {
  explicit CollHarness(machine::MachineProfile profile, bool data_mode = true)
      : world(std::move(profile),
              [&] {
                mpi::SimWorld::Options o;
                o.data_mode = data_mode;
                return o;
              }()),
        rt(world),
        mods(world, rt) {}

  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
};

/// Every rank issues `issue(rank)` (after an optional per-rank delay) and
/// waits for the returned request. Returns per-rank completion times.
inline std::vector<double> run_collective(
    mpi::SimWorld& w,
    const std::function<mpi::Request(mpi::Rank&)>& issue,
    const std::function<double(int)>& delay = nullptr) {
  std::vector<double> done(w.world_size(), -1.0);
  w.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](mpi::SimWorld& w2, mpi::Rank& rank2,
              const std::function<mpi::Request(mpi::Rank&)>& issue2,
              const std::function<double(int)>& delay2,
              std::vector<double>& done2) -> sim::CoTask {
      if (delay2) co_await sim::Delay{w2.engine(), delay2(rank2.world_rank)};
      const double t0 = w2.now();
      mpi::Request r = issue2(rank2);
      co_await *r;
      done2[rank2.world_rank] = w2.now() - t0;
    }(w, rank, issue, delay, done);
  });
  return done;
}

/// Deterministic per-rank, per-element payload.
inline std::int32_t pattern(int rank, std::size_t i) {
  return static_cast<std::int32_t>(rank * 1000003 + static_cast<int>(i * 7));
}

inline std::vector<std::int32_t> pattern_vec(int rank, std::size_t count) {
  std::vector<std::int32_t> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = pattern(rank, i);
  return v;
}

/// Element-wise expected reduction over ranks [0, n).
inline std::vector<std::int32_t> expected_reduce(mpi::ReduceOp op, int n,
                                                 std::size_t count) {
  std::vector<std::int32_t> acc = pattern_vec(0, count);
  for (int r = 1; r < n; ++r) {
    std::vector<std::int32_t> in = pattern_vec(r, count);
    mpi::apply_reduce(op, mpi::Datatype::Int32,
                      reinterpret_cast<std::byte*>(acc.data()),
                      reinterpret_cast<const std::byte*>(in.data()), count);
  }
  return acc;
}

}  // namespace han::test

// Multi-rail fabric and rail-striping tests (docs/FABRIC.md): profile and
// fabric plumbing, striped data correctness, the single-rail fallback,
// per-rail observability, round-robin balance, and the striping speedup
// that makes the sf axis worth tuning.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "coll_test_util.hpp"
#include "han/han.hpp"
#include "machine/fabric.hpp"

namespace han {
namespace {

using coll::Algorithm;
using core::HanConfig;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::expected_reduce;
using test::pattern_vec;
using test::run_collective;

struct HanHarness : test::CollHarness {
  explicit HanHarness(machine::MachineProfile profile, bool data_mode = true)
      : CollHarness(std::move(profile), data_mode), han(world, rt, mods) {}
  core::HanModule han;
};

machine::MachineProfile stock_profile(const char* name) {
  for (const machine::StockMachine& sm : machine::stock_machines()) {
    if (std::string(sm.name) == name) return sm.profile;
  }
  ADD_FAILURE() << "no stock machine named " << name;
  return machine::make_aries(2, 2);
}

/// Bandwidth-heavy pipelined config: 2 MiB fragments through the adapt
/// chain, optionally striped across `sf` rails.
HanConfig rail_cfg(int sf) {
  HanConfig c;
  c.fs = 2 << 20;
  c.imod = "adapt";
  c.smod = "sm";
  c.ibalg = Algorithm::Chain;
  c.iralg = Algorithm::Chain;
  c.ibs = 0;
  c.irs = 0;
  c.sf = sf;
  return c;
}

double bcast_time(HanHarness& h, std::size_t bytes, const HanConfig& cfg) {
  auto done = run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, 0,
                            BufView::timing_only(bytes), Datatype::Byte,
                            cfg);
  });
  return *std::max_element(done.begin(), done.end());
}

double allreduce_time(HanHarness& h, std::size_t bytes,
                      const HanConfig& cfg) {
  auto done = run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.iallreduce_cfg(h.world.world_comm(), rank.world_rank,
                                BufView::timing_only(bytes),
                                BufView::timing_only(bytes), Datatype::Byte,
                                ReduceOp::Sum, cfg);
  });
  return *std::max_element(done.begin(), done.end());
}

// --- profile and fabric plumbing ----------------------------------------

TEST(RailProfile, WithRailsAndStockRegistry) {
  const machine::MachineProfile m =
      machine::with_rails(machine::make_aries(2, 8), 4);
  EXPECT_EQ(m.nics_per_node, 4);
  EXPECT_EQ(m.rail_policy, machine::RailPolicy::LeaderAffine);

  bool aries_rail4 = false, opath_rail4 = false;
  for (const machine::StockMachine& sm : machine::stock_machines()) {
    if (std::string(sm.name) == "aries_rail4") {
      aries_rail4 = true;
      EXPECT_EQ(sm.profile.nics_per_node, 4);
    }
    if (std::string(sm.name) == "opath_numa2x2x4_rail4") {
      opath_rail4 = true;
      EXPECT_EQ(sm.profile.nics_per_node, 4);
      EXPECT_EQ(sm.profile.numa_per_node, 2);
    }
  }
  EXPECT_TRUE(aries_rail4);
  EXPECT_TRUE(opath_rail4);

  machine::MachineProfile stock;
  ASSERT_TRUE(machine::make_stock("aries", 4, 4, 1, &stock, /*rails=*/2));
  EXPECT_EQ(stock.nics_per_node, 2);
}

TEST(RailFabric, RailsGetDisjointInterPaths) {
  sim::Engine engine;
  net::FlowNet net(engine);
  const machine::MachineProfile m =
      machine::with_rails(machine::make_aries(2, 4), 4);
  machine::ClusterFabric fabric(net, m);
  EXPECT_EQ(fabric.rails(), 4);
  std::vector<net::ResourceId> p0, p2;
  fabric.inter_path(0, 1, 0, p0);
  fabric.inter_path(0, 1, 2, p2);
  ASSERT_EQ(p0.size(), p2.size());
  // NIC tx, fabric, NIC rx differ per rail; the DMA memory buses are
  // shared (the physical cross-rail coupling).
  EXPECT_NE(p0[0], p2[0]);
  EXPECT_NE(p0[1], p2[1]);
  EXPECT_NE(p0[2], p2[2]);
  EXPECT_EQ(p0[3], p2[3]);
  EXPECT_EQ(p0[4], p2[4]);
}

// --- striped data correctness -------------------------------------------

TEST(RailStriping, StripedBcastDeliversCorrectData) {
  HanHarness h(machine::with_rails(machine::make_aries(2, 4), 4),
               /*data_mode=*/true);
  const int n = h.world.world_size();
  const std::size_t count = 4000;
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == 0 ? pattern_vec(0, count)
                     : std::vector<std::int32_t>(count, -1);
  }
  HanConfig cfg = rail_cfg(4);
  cfg.fs = 4 << 10;  // several fragments, each striped into 4 slices
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast_cfg(h.world.world_comm(), rank.world_rank, 0,
                            BufView::of(bufs[rank.world_rank],
                                        Datatype::Int32),
                            Datatype::Int32, cfg);
  });
  const auto expect = pattern_vec(0, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

TEST(RailStriping, StripedAllreduceDeliversCorrectData) {
  HanHarness h(machine::with_rails(machine::make_aries(2, 4), 4),
               /*data_mode=*/true);
  const int n = h.world.world_size();
  const std::size_t count = 4000;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count, -1);
  }
  HanConfig cfg = rail_cfg(4);
  cfg.fs = 4 << 10;
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.han.iallreduce_cfg(
        h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
        BufView::of(recv[r], Datatype::Int32), Datatype::Int32,
        ReduceOp::Sum, cfg);
  });
  const auto want = expected_reduce(ReduceOp::Sum, n, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], want) << "rank " << r;
}

// --- single-rail fallback ------------------------------------------------

TEST(RailStriping, StripedConfigOnSingleRailMachineMatchesUnstriped) {
  // effective_sf clamps to the machine's NIC count, so a striped config
  // carried to a single-rail machine degrades to bit-identical behavior
  // (same graphs, same simulated times), not an error.
  for (std::size_t bytes : {std::size_t{64} << 10, std::size_t{8} << 20}) {
    HanHarness plain(machine::make_aries(2, 4), false);
    HanHarness striped(machine::make_aries(2, 4), false);
    const double t_plain = bcast_time(plain, bytes, rail_cfg(1));
    const double t_striped = bcast_time(striped, bytes, rail_cfg(4));
    EXPECT_EQ(t_plain, t_striped) << bytes;

    HanHarness plain2(machine::make_aries(2, 4), false);
    HanHarness striped2(machine::make_aries(2, 4), false);
    EXPECT_EQ(allreduce_time(plain2, bytes, rail_cfg(1)),
              allreduce_time(striped2, bytes, rail_cfg(4)))
        << bytes;
  }
}

// --- the striping win ----------------------------------------------------

TEST(RailStriping, StripedBeatsSingleRailAtLargeMessages) {
  // The LeaderAffine default pins a single-leader plan's traffic to rail
  // 0, so sf=1 sees one NIC while sf=4 aggregates all four — the paper's
  // multi-rail motivation. At 16 MiB the transfer is bandwidth-bound and
  // the best striped config must beat the best forced single-rail one by
  // at least 2x on the stock 4-rail machine (the abl_rail acceptance bar).
  const machine::MachineProfile prof = stock_profile("aries_rail4");
  auto best = [&](int sf) {
    double b = 1e300;
    for (std::size_t fs : {std::size_t{1} << 20, std::size_t{2} << 20,
                           std::size_t{4} << 20, std::size_t{16} << 20}) {
      HanHarness h(prof, false);
      HanConfig cfg = rail_cfg(sf);
      cfg.fs = fs;
      b = std::min(b, bcast_time(h, 16 << 20, cfg));
    }
    return b;
  };
  const double t1 = best(1);
  const double t4 = best(4);
  EXPECT_GT(t1, t4 * 2.0) << "t1=" << t1 << " t4=" << t4;
}

// --- per-rail observability ---------------------------------------------

TEST(RailObs, StripedRunFillsPerRailCountersAndHistograms) {
  HanHarness h(machine::with_rails(machine::make_aries(2, 8), 4), false);
  bcast_time(h, 16 << 20, rail_cfg(4));
  obs::MetricsRegistry& m = h.world.metrics();
  for (int r = 0; r < 4; ++r) {
    const std::string rail = ".r" + std::to_string(r);
    EXPECT_GT(m.counter("net.res.fabric" + rail + ".bytes").value(), 0.0)
        << "rail " << r;
    EXPECT_GT(m.histogram("net.fabric.rail" + std::to_string(r) +
                          ".queue_depth")
                  .total_weight(),
              0.0)
        << "rail " << r;
  }
}

TEST(RailObs, RoundRobinPolicyBalancesUnstripedTraffic) {
  // Unstriped single-leader traffic under RoundRobin spreads its messages
  // across all rails; the per-rail fabric byte counters must come out
  // close to even (every rail within 2x of every other).
  machine::MachineProfile m =
      machine::with_rails(machine::make_aries(2, 8), 4);
  m.rail_policy = machine::RailPolicy::RoundRobin;
  HanHarness h(std::move(m), false);
  HanConfig cfg = rail_cfg(1);
  cfg.fs = 512 << 10;  // 32 fragments: plenty of messages to spread
  bcast_time(h, 16 << 20, cfg);
  obs::MetricsRegistry& reg = h.world.metrics();
  double lo = 1e300, hi = 0.0;
  for (int r = 0; r < 4; ++r) {
    const double b =
        reg.counter("net.res.fabric.r" + std::to_string(r) + ".bytes")
            .value();
    EXPECT_GT(b, 0.0) << "rail " << r;
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  EXPECT_LT(hi, lo * 2.0 + 1.0);
}

}  // namespace
}  // namespace han

// Failure-injection and imbalance studies: degraded links mid-collective,
// a straggler node's slow NIC, busy-CPU interference, and imbalanced
// process arrival (cf. Parsons et al. [25], cited in the paper's related
// work). The simulator must stay correct and its timings must respond
// monotonically to the injected degradation.
#include <gtest/gtest.h>

#include "coll_test_util.hpp"
#include "han/han.hpp"

namespace han {
namespace {

using coll::CollConfig;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using test::pattern_vec;
using test::run_collective;

struct HanHarness : test::CollHarness {
  explicit HanHarness(machine::MachineProfile profile, bool data_mode = true)
      : CollHarness(std::move(profile), data_mode), han(world, rt, mods) {}
  core::HanModule han;
};

double han_bcast_time(HanHarness& h, std::size_t bytes) {
  auto done = run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast(h.world.world_comm(), rank.world_rank, 0,
                        BufView::timing_only(bytes), Datatype::Byte,
                        CollConfig{});
  });
  return *std::max_element(done.begin(), done.end());
}

TEST(Degradation, SlowNicOnOneNodeSlowsTheCollective) {
  HanHarness healthy(machine::make_aries(4, 4), false);
  const double t_healthy = han_bcast_time(healthy, 4 << 20);

  HanHarness degraded(machine::make_aries(4, 4), false);
  // Node 2's receive NIC drops to a tenth of nominal.
  degraded.world.flownet().set_capacity(
      degraded.world.fabric().nic_rx(2),
      degraded.world.profile().nic_bandwidth / 10.0);
  const double t_degraded = han_bcast_time(degraded, 4 << 20);

  EXPECT_GT(t_degraded, t_healthy * 2.0)
      << "a 10x slower NIC must visibly slow the whole collective";
}

TEST(Degradation, DegradedFabricStillDeliversCorrectData) {
  HanHarness h(machine::make_aries(3, 3), /*data_mode=*/true);
  h.world.flownet().set_capacity(
      h.world.fabric().fabric(),
      h.world.profile().nic_bandwidth / 4.0);  // choked bisection
  const int n = 9;
  std::vector<std::vector<std::int32_t>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = r == 0 ? pattern_vec(0, 4000)
                     : std::vector<std::int32_t>(4000, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    return h.han.ibcast(h.world.world_comm(), rank.world_rank, 0,
                        BufView::of(bufs[rank.world_rank], Datatype::Int32),
                        Datatype::Int32, CollConfig{});
  });
  const auto expect = pattern_vec(0, 4000);
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[r], expect) << "rank " << r;
}

TEST(Degradation, MidFlightCapacityDropIsAccounted) {
  // Degrade node 1's rx NIC while a bcast is in flight; the run must still
  // complete, slower than the healthy run.
  auto timed = [](bool degrade) {
    HanHarness h(machine::make_aries(2, 2), false);
    if (degrade) {
      h.world.engine().schedule_at(50e-6, [&h] {
        h.world.flownet().set_capacity(
            h.world.fabric().nic_rx(1),
            h.world.profile().nic_bandwidth / 20.0);
      });
    }
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ibcast(h.world.world_comm(), rank.world_rank, 0,
                          BufView::timing_only(8 << 20), Datatype::Byte,
                          CollConfig{});
    });
    return *std::max_element(done.begin(), done.end());
  };
  EXPECT_GT(timed(true), timed(false) * 1.5);
}

core::HanConfig ring_cfg(std::size_t fs) {
  core::HanConfig cfg;
  cfg.fs = fs;
  cfg.imod = "ring";
  cfg.smod = "sm";
  cfg.ibalg = coll::Algorithm::Ring;
  cfg.iralg = coll::Algorithm::Ring;
  return cfg;
}

TEST(Degradation, ReduceScatterCorrectOnDegradedLink) {
  // Both inter paths of the hierarchical reduce-scatter must stay
  // bit-correct when the fabric is choked and one NIC limps.
  for (const bool use_ring : {true, false}) {
    HanHarness h(machine::make_aries(3, 3), /*data_mode=*/true);
    h.world.flownet().set_capacity(
        h.world.fabric().fabric(),
        h.world.profile().nic_bandwidth / 4.0);
    h.world.flownet().set_capacity(
        h.world.fabric().nic_rx(1),
        h.world.profile().nic_bandwidth / 8.0);
    const int n = 9;
    const std::size_t block = 400;
    std::vector<std::vector<std::int32_t>> send(n), recv(n);
    for (int r = 0; r < n; ++r) {
      send[r] = pattern_vec(r, block * n);
      recv[r].assign(block, -1);
    }
    core::HanConfig cfg = ring_cfg(512);
    if (!use_ring) {
      cfg.imod = "libnbc";
      cfg.ibalg = coll::Algorithm::Binomial;
      cfg.iralg = coll::Algorithm::Binomial;
    }
    run_collective(h.world, [&](mpi::Rank& rank) {
      const int r = rank.world_rank;
      return h.han.ireduce_scatter_cfg(
          h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
          BufView::of(recv[r], Datatype::Int32), Datatype::Int32,
          ReduceOp::Sum, cfg);
    });
    const auto full = test::expected_reduce(ReduceOp::Sum, n, block * n);
    for (int r = 0; r < n; ++r) {
      const std::vector<std::int32_t> want(full.begin() + r * block,
                                           full.begin() + (r + 1) * block);
      EXPECT_EQ(recv[r], want)
          << "rank " << r << (use_ring ? " ring" : " tree");
    }
  }
}

TEST(Degradation, RingAllreduceCorrectOnDegradedLink) {
  const int n = 5;
  test::CollHarness h(machine::make_aries(n, 1), /*data_mode=*/true);
  h.world.flownet().set_capacity(
      h.world.fabric().nic_rx(2),
      h.world.profile().nic_bandwidth / 10.0);
  const std::size_t count = 500;
  std::vector<std::vector<std::int32_t>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[r] = pattern_vec(r, count);
    recv[r].assign(count, -1);
  }
  run_collective(h.world, [&](mpi::Rank& rank) {
    const int r = rank.world_rank;
    return h.mods.ring().iallreduce(
        h.world.world_comm(), r, BufView::of(send[r], Datatype::Int32),
        BufView::of(recv[r], Datatype::Int32), Datatype::Int32, ReduceOp::Sum,
        CollConfig{});
  });
  const auto want = test::expected_reduce(ReduceOp::Sum, n, count);
  for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], want) << "rank " << r;
}

TEST(Degradation, StragglerNicSlowsRingReduceScatterMonotonically) {
  // The ring pumps every byte through every leader NIC, so its completion
  // time must track a single straggler NIC monotonically.
  auto timed = [](double slowdown) {
    HanHarness h(machine::make_aries(4, 4), false);
    if (slowdown > 1.0) {
      h.world.flownet().set_capacity(
          h.world.fabric().nic_rx(2),
          h.world.profile().nic_bandwidth / slowdown);
    }
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ireduce_scatter_cfg(
          h.world.world_comm(), rank.world_rank,
          BufView::timing_only(4 << 20), BufView::timing_only(256 << 10),
          Datatype::Byte, ReduceOp::Sum, ring_cfg(512 << 10));
    });
    return *std::max_element(done.begin(), done.end());
  };
  // The intra stages (membus-bound) set a floor, so the NIC only shows
  // through partially at mild degradation — assert monotone growth, not
  // proportional slowdown.
  const double healthy = timed(1.0);
  const double mild = timed(8.0);
  const double severe = timed(64.0);
  EXPECT_GT(mild, healthy * 1.05);
  EXPECT_GT(severe, mild * 1.5);
}

TEST(Imbalance, BusyCpuOnLeaderDelaysPipeline) {
  // Interference on the node-1 leader's CPU (a compute-bound co-runner)
  // stretches HAN's shared-memory stage.
  auto timed = [](bool interfere) {
    HanHarness h(machine::make_aries(4, 4), false);
    if (interfere) {
      // Rank 4 = node 1's leader: keep its CPU busy in 50us bursts.
      for (int burst = 0; burst < 40; ++burst) {
        h.world.engine().schedule_at(burst * 60e-6, [&h] {
          h.world.compute(4, 50e-6);
        });
      }
    }
    auto done = run_collective(h.world, [&](mpi::Rank& rank) {
      return h.han.ibcast(h.world.world_comm(), rank.world_rank, 0,
                          BufView::timing_only(4 << 20), Datatype::Byte,
                          CollConfig{});
    });
    return *std::max_element(done.begin(), done.end());
  };
  EXPECT_GT(timed(true), timed(false) * 1.05);
}

TEST(Imbalance, ArrivalSkewShiftsCostToLateRank) {
  // Parsons et al.: imbalanced process arrival dominates collective cost.
  // With one rank arriving T late, everyone else's inclusive time grows by
  // about T when they depend on it (allreduce), and the late rank's own
  // inclusive time stays near the balanced cost.
  HanHarness h(machine::make_aries(2, 4), false);
  const double T = 500e-6;
  auto done = run_collective(
      h.world,
      [&](mpi::Rank& rank) {
        return h.han.iallreduce(h.world.world_comm(), rank.world_rank,
                                BufView::timing_only(256 << 10),
                                BufView::timing_only(256 << 10),
                                Datatype::Byte, ReduceOp::Sum, CollConfig{});
      },
      [&](int r) { return r == 5 ? T : 0.0; });
  // Rank 5's inclusive time excludes its own tardiness; others include it.
  EXPECT_LT(done[5] + 0.8 * T, done[0]);
  EXPECT_GT(done[0], T);
}

TEST(Imbalance, BalancedArrivalIsFastestOverall) {
  HanHarness h(machine::make_aries(2, 4), false);
  auto run_skewed = [&](double skew) {
    HanHarness hh(machine::make_aries(2, 4), false);
    auto done = run_collective(
        hh.world,
        [&](mpi::Rank& rank) {
          return hh.han.iallreduce(hh.world.world_comm(), rank.world_rank,
                                   BufView::timing_only(64 << 10),
                                   BufView::timing_only(64 << 10),
                                   Datatype::Byte, ReduceOp::Sum,
                                   CollConfig{});
        },
        [&](int r) { return r * skew; });
    // Wall completion = last arrival + its inclusive time; approximate
    // with max over (skew_r + done_r).
    double wall = 0.0;
    for (int r = 0; r < 8; ++r) wall = std::max(wall, r * skew + done[r]);
    return wall;
  };
  EXPECT_LT(run_skewed(0.0), run_skewed(20e-6));
}

}  // namespace
}  // namespace han

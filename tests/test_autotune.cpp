// Autotuner tests: task benchmarks, cost models (eqs. 3/4), search
// strategies, heuristics, and the lookup table.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "autotune/tuner.hpp"
#include "coll_test_util.hpp"

namespace han::tune {
namespace {

using coll::Algorithm;
using coll::CollKind;
using core::HanConfig;

struct TuneHarness : test::CollHarness {
  explicit TuneHarness(machine::MachineProfile profile)
      : CollHarness(std::move(profile), /*data_mode=*/false),
        han(world, rt, mods) {}
  core::HanModule han;
};

HanConfig cfg_of(std::size_t fs, const char* imod, const char* smod,
                 Algorithm alg, std::size_t iseg) {
  HanConfig c;
  c.fs = fs;
  c.imod = imod;
  c.smod = smod;
  c.ibalg = alg;
  c.iralg = alg;
  c.ibs = iseg;
  c.irs = iseg;
  return c;
}

/// Small space so integration tests stay fast.
SearchSpace small_space() {
  SearchSpace s;
  s.fs_sizes = {64 << 10, 256 << 10, 1 << 20};
  s.adapt_algs = {Algorithm::Binary, Algorithm::Chain};
  s.adapt_inter_segments = {64 << 10};
  return s;
}

// --- plumbing math -------------------------------------------------------

TEST(PerLeaderTest, MaxAvg) {
  PerLeader p{std::vector<double>{1.0, 3.0, 2.0}};
  EXPECT_DOUBLE_EQ(p.max(), 3.0);
  EXPECT_DOUBLE_EQ(p.avg(), 2.0);
}

TEST(PipelineTraceTest, StabilizedAveragesTail) {
  PipelineTrace t;
  for (double v : {10.0, 5.0, 2.0, 2.2, 1.8}) {
    t.steps.push_back(PerLeader{std::vector<double>{v}});
  }
  EXPECT_NEAR(t.stabilized(3).t[0], 2.0, 1e-12);
}

TEST(CostModel, BcastEq3) {
  BcastTaskCosts c;
  c.ib0 = PerLeader{{10.0, 12.0}};
  c.sb0 = PerLeader{{3.0, 2.0}};
  c.sbib_stable = PerLeader{{5.0, 4.0}};
  // leader0: 10 + 7*5 + 3 = 48 ; leader1: 12 + 7*4 + 2 = 42.
  EXPECT_DOUBLE_EQ(bcast_model_cost(c, 8), 48.0);
  // u=1: no sbib steps.
  EXPECT_DOUBLE_EQ(bcast_model_cost(c, 1), 14.0);
}

TEST(CostModel, AllreduceEq4) {
  AllreduceTaskCosts c;
  c.sr0 = PerLeader{{1.0}};
  c.irsr = PerLeader{{2.0}};
  c.ibirsr = PerLeader{{3.0}};
  c.sbibirsr_stable = PerLeader{{4.0}};
  c.sbibir = PerLeader{{3.0}};
  c.sbib = PerLeader{{2.0}};
  c.sb = PerLeader{{1.0}};
  // u=10: 1+2+3 + 7*4 + 3+2+1 = 40.
  EXPECT_DOUBLE_EQ(allreduce_model_cost(c, 10), 40.0);
  // u=1: sr + drain only.
  EXPECT_DOUBLE_EQ(allreduce_model_cost(c, 1), 7.0);
}

TEST(CostModel, FromTraceSplitsPhases) {
  PipelineTrace t;
  for (double v : {1.0, 2.0, 3.0, 9.0, 4.0, 4.0, 4.0, 3.0, 2.0, 1.0}) {
    t.steps.push_back(PerLeader{std::vector<double>{v}});
  }
  const auto c = AllreduceTaskCosts::from_trace(t);
  EXPECT_DOUBLE_EQ(c.sr0.t[0], 1.0);
  EXPECT_DOUBLE_EQ(c.irsr.t[0], 2.0);
  EXPECT_DOUBLE_EQ(c.ibirsr.t[0], 3.0);
  // Steps 4..6 average to 4 (step 3 skipped as pipeline fill).
  EXPECT_DOUBLE_EQ(c.sbibirsr_stable.t[0], 4.0);
  EXPECT_DOUBLE_EQ(c.sbibir.t[0], 3.0);
  EXPECT_DOUBLE_EQ(c.sbib.t[0], 2.0);
  EXPECT_DOUBLE_EQ(c.sb.t[0], 1.0);
}

// --- search space & heuristics --------------------------------------------

TEST(SearchSpaceTest, EnumerationCount) {
  SearchSpace s;
  // Per fs x smod: libnbc (1) + adapt algs(3) x isegs(2) = 7.
  EXPECT_EQ(s.enumerate(CollKind::Bcast).size(), 6u * 2u * 7u);
}

TEST(Heuristics, SoloNeedsBigSegments) {
  EXPECT_FALSE(heuristic_allows(
      cfg_of(64 << 10, "adapt", "solo", Algorithm::Binary, 0),
      CollKind::Bcast, 4 << 20, 64));
  EXPECT_TRUE(heuristic_allows(
      cfg_of(1 << 20, "adapt", "solo", Algorithm::Binary, 0),
      CollKind::Bcast, 4 << 20, 4));
}

TEST(Heuristics, ChainNeedsPipelineDepth) {
  EXPECT_FALSE(heuristic_allows(
      cfg_of(2 << 20, "adapt", "sm", Algorithm::Chain, 0), CollKind::Bcast,
      4 << 20, 2));
  EXPECT_TRUE(heuristic_allows(
      cfg_of(256 << 10, "adapt", "sm", Algorithm::Chain, 0), CollKind::Bcast,
      4 << 20, 16));
}

TEST(Heuristics, OversizedSegmentsDeduped) {
  // m = 100KB: fs = 2MB prunes (fs/2 = 1MB still >= m), fs = 128KB stays.
  EXPECT_FALSE(heuristic_allows(
      cfg_of(2 << 20, "adapt", "sm", Algorithm::Binary, 0), CollKind::Bcast,
      100 << 10, 1));
  EXPECT_TRUE(heuristic_allows(
      cfg_of(128 << 10, "adapt", "sm", Algorithm::Binary, 0),
      CollKind::Bcast, 100 << 10, 1));
}

// --- lookup table -----------------------------------------------------------

TEST(LookupTableTest, BucketOf) {
  EXPECT_EQ(LookupTable::bucket_of(1), 0);
  EXPECT_EQ(LookupTable::bucket_of(2), 1);
  EXPECT_EQ(LookupTable::bucket_of(1 << 20), 20);
  EXPECT_EQ(LookupTable::bucket_of((1 << 20) + 5), 20);
}

TEST(LookupTableTest, InsertFindDecide) {
  LookupTable t;
  const HanConfig small = cfg_of(64 << 10, "libnbc", "sm",
                                 Algorithm::Binomial, 0);
  const HanConfig big = cfg_of(1 << 20, "adapt", "solo", Algorithm::Binary,
                               64 << 10);
  t.insert(CollKind::Bcast, 64, 12, 64 << 10, small);
  t.insert(CollKind::Bcast, 64, 12, 16 << 20, big);
  ASSERT_NE(t.find(CollKind::Bcast, 64, 12, 64 << 10), nullptr);
  EXPECT_EQ(*t.find(CollKind::Bcast, 64, 12, 64 << 10), small);
  EXPECT_EQ(t.find(CollKind::Bcast, 64, 12, 1 << 20), nullptr);

  // Nearest-bucket decisions.
  EXPECT_EQ(t.decide(CollKind::Bcast, 64, 12, 32 << 10), small);
  EXPECT_EQ(t.decide(CollKind::Bcast, 64, 12, 64 << 20), big);
  // Different shape falls back to the nearest tuned shape.
  EXPECT_EQ(t.decide(CollKind::Bcast, 32, 12, 16 << 20), big);
  // Untuned kind falls back to the default heuristic (valid modules).
  const HanConfig fallback = t.decide(CollKind::Allreduce, 64, 12, 1 << 20);
  EXPECT_FALSE(fallback.imod.empty());
}

TEST(LookupTableTest, SerializeRoundTrip) {
  LookupTable t;
  t.insert(CollKind::Bcast, 64, 12, 1 << 20,
           cfg_of(256 << 10, "adapt", "sm", Algorithm::Chain, 32 << 10));
  t.insert(CollKind::Allreduce, 64, 12, 4 << 20,
           cfg_of(1 << 20, "adapt", "solo", Algorithm::Binary, 64 << 10));
  LookupTable back;
  ASSERT_TRUE(LookupTable::deserialize(t.serialize(), &back));
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(*back.find(CollKind::Bcast, 64, 12, 1 << 20),
            *t.find(CollKind::Bcast, 64, 12, 1 << 20));
}

TEST(LookupTableTest, FileRoundTrip) {
  LookupTable t;
  t.insert(CollKind::Bcast, 8, 4, 1 << 20,
           cfg_of(256 << 10, "adapt", "sm", Algorithm::Binary, 0));
  const std::string path = "/tmp/han_lookup_test.txt";
  ASSERT_TRUE(t.save(path));
  auto loaded = LookupTable::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
}

TEST(LookupTableTest, DeserializeRejectsGarbage) {
  LookupTable t;
  EXPECT_FALSE(LookupTable::deserialize("bcast 64 : nope\n", &t));
  EXPECT_FALSE(LookupTable::deserialize("quantum 64 12 20 : fs=4M\n", &t));
  EXPECT_TRUE(LookupTable::deserialize("# only comments\n", &t));
}

TEST(LookupTableTest, FormatVersionHeader) {
  // serialize() writes the current format version.
  LookupTable t;
  EXPECT_NE(t.serialize().find(
                "version " + std::to_string(LookupTable::kFormatVersion)),
            std::string::npos);

  // Version-less text is the v1 seed format and still parses.
  LookupTable back;
  EXPECT_TRUE(LookupTable::deserialize(
      "bcast 2 2 20 : fs=64K imod=adapt smod=sm ibalg=binary iralg=binary "
      "ibs=32K irs=32K\n",
      &back));
  EXPECT_EQ(back.size(), 1u);

  // An explicit v1..v4 header parses; newer or mangled headers do not.
  EXPECT_TRUE(LookupTable::deserialize("version 1\n", &back));
  EXPECT_TRUE(LookupTable::deserialize("version 2\n", &back));
  EXPECT_TRUE(LookupTable::deserialize("version 3\n", &back));
  EXPECT_TRUE(LookupTable::deserialize("version 4\n", &back));
  EXPECT_FALSE(LookupTable::deserialize("version 5\n", &back));
  EXPECT_FALSE(LookupTable::deserialize("version 0\n", &back));
  EXPECT_FALSE(LookupTable::deserialize("version two\n", &back));
  EXPECT_FALSE(LookupTable::deserialize("version 2 extra\n", &back));
  // A version line after an entry is not a header.
  EXPECT_FALSE(LookupTable::deserialize(
      "bcast 2 2 20 : fs=64K imod=adapt smod=sm ibalg=binary iralg=binary "
      "ibs=32K irs=32K\nversion 2\n",
      &back));
}

TEST(LookupTableTest, RandomizedRoundTripEveryKind) {
  // Property: serialize -> deserialize -> serialize is byte-identical for
  // arbitrary tables spanning every collective kind (including the ring
  // reduce-scatter configs and synthesized-schedule entries) and the full
  // config knob ranges.
  std::mt19937 rng(20260806);
  const CollKind kinds[] = {
      CollKind::Bcast,     CollKind::Reduce,  CollKind::Allreduce,
      CollKind::Gather,    CollKind::Scatter, CollKind::Allgather,
      CollKind::Barrier,   CollKind::ReduceScatter};
  const char* imods[] = {"libnbc", "adapt", "ring"};
  const char* smods[] = {"sm", "solo"};
  const Algorithm algs[] = {Algorithm::Linear,   Algorithm::Chain,
                            Algorithm::Binary,   Algorithm::Binomial,
                            Algorithm::RecursiveDoubling, Algorithm::Ring};
  auto pick = [&rng](auto&& arr) -> decltype(auto) {
    return arr[std::uniform_int_distribution<std::size_t>(
        0, std::size(arr) - 1)(rng)];
  };
  for (int trial = 0; trial < 50; ++trial) {
    LookupTable t;
    const int entries =
        std::uniform_int_distribution<int>(1, 24)(rng);
    for (int e = 0; e < entries; ++e) {
      HanConfig cfg;
      cfg.fs = std::size_t{1} << std::uniform_int_distribution<int>(14, 22)(rng);
      cfg.imod = pick(imods);
      cfg.smod = pick(smods);
      cfg.ibalg = cfg.imod == std::string("ring") ? Algorithm::Ring
                                                  : pick(algs);
      cfg.iralg = cfg.ibalg;
      cfg.ibs = std::uniform_int_distribution<int>(0, 1)(rng) == 0
                    ? 0
                    : std::size_t{1} <<
                          std::uniform_int_distribution<int>(12, 20)(rng);
      cfg.irs = cfg.ibs;
      // Roughly a third of the entries carry a synthesized schedule id
      // (the v2 format extension).
      const char* scheds[] = {"ar1:k1:sr0.ir1.ib2.sb3",
                              "ar1:k2:sr0.ir0.ib1.sb2",
                              "ar1:k4:ib3.ir1.sr0.sb4",
                              "bc1:k1:sb1.ib0",
                              "bc1:k1:ib0.sb2"};
      if (std::uniform_int_distribution<int>(0, 2)(rng) == 0) {
        cfg.sched = pick(scheds);
      }
      // Roughly a third carry per-level hierarchy tokens (the v3 format
      // extension: lvl/malg/ms/zcs, docs/HIERARCHY.md).
      if (std::uniform_int_distribution<int>(0, 2)(rng) == 0) {
        cfg.lvl = std::uniform_int_distribution<int>(0, 1)(rng) == 0
                      ? 2
                      : std::uniform_int_distribution<int>(3, 8)(rng);
        cfg.malg = pick(algs);
        cfg.ms = std::size_t{1}
                 << std::uniform_int_distribution<int>(12, 18)(rng);
        cfg.zcs = std::uniform_int_distribution<int>(0, 1)(rng) == 0
                      ? 0
                      : std::size_t{1} <<
                            std::uniform_int_distribution<int>(14, 22)(rng);
      }
      // Roughly a third carry a rail-stripe factor (the v4 format
      // extension: sf, docs/FABRIC.md).
      if (std::uniform_int_distribution<int>(0, 2)(rng) == 0) {
        cfg.sf = 1 << std::uniform_int_distribution<int>(1, 4)(rng);
      }
      t.insert(pick(kinds),
               std::uniform_int_distribution<int>(1, 512)(rng),
               std::uniform_int_distribution<int>(1, 128)(rng),
               std::size_t{1} <<
                   std::uniform_int_distribution<int>(0, 28)(rng),
               cfg);
    }
    const std::string text = t.serialize();
    LookupTable back;
    ASSERT_TRUE(LookupTable::deserialize(text, &back)) << text;
    EXPECT_EQ(back.serialize(), text);
    EXPECT_EQ(back.size(), t.size());
  }
}

// --- task benchmarks (integration) ------------------------------------------

TEST(TaskBenchTest, IbSbCostsPositiveAndOrdered) {
  TuneHarness h(machine::make_aries(6, 4));
  TaskBench tb(h.world, h.han, h.world.world_comm());
  const HanConfig cfg =
      cfg_of(64 << 10, "adapt", "sm", Algorithm::Binary, 0);

  const PerLeader ib = tb.bench_ib(cfg, 64 << 10);
  const PerLeader sb = tb.bench_sb(cfg, 64 << 10);
  ASSERT_EQ(ib.t.size(), 6u);
  for (double v : ib.t) EXPECT_GT(v, 0.0);
  for (double v : sb.t) EXPECT_GT(v, 0.0);
  EXPECT_GT(tb.elapsed_cost(), 0.0);

  // Paper Fig. 2: overlap is real (concurrent < ib+sb) but imperfect
  // (concurrent > max(ib, sb)).
  const PerLeader both = tb.bench_concurrent_ib_sb(cfg, 64 << 10);
  EXPECT_LT(both.max(), ib.max() + sb.max());
  EXPECT_GT(both.max(), std::max(ib.max(), sb.max()) * 0.999);
}

TEST(TaskBenchTest, SbibPipelineStabilizes) {
  TuneHarness h(machine::make_aries(6, 4));
  TaskBench tb(h.world, h.han, h.world.world_comm());
  const HanConfig cfg =
      cfg_of(64 << 10, "adapt", "sm", Algorithm::Binary, 0);
  const PerLeader ib = tb.bench_ib(cfg, 64 << 10);
  const PipelineTrace trace =
      tb.bench_sbib_pipeline(cfg, 64 << 10, /*steps=*/8, ib);
  ASSERT_EQ(trace.steps.size(), 8u);
  // Paper Fig. 3: last steps vary little.
  const double s6 = trace.steps[6].max();
  const double s7 = trace.steps[7].max();
  EXPECT_NEAR(s6, s7, 0.35 * std::max(s6, s7));
}

TEST(TaskBenchTest, AllreducePipelineTraceShape) {
  TuneHarness h(machine::make_aries(4, 4));
  TaskBench tb(h.world, h.han, h.world.world_comm());
  const HanConfig cfg =
      cfg_of(64 << 10, "adapt", "sm", Algorithm::Binary, 0);
  const PipelineTrace trace =
      tb.bench_allreduce_pipeline(cfg, 64 << 10, /*steps=*/6);
  ASSERT_EQ(trace.steps.size(), 9u);  // 6 + 3 drain
  for (const auto& step : trace.steps) EXPECT_GT(step.max(), 0.0);
  // The full 4-stage steady step costs at least as much as the lone sr(0).
  EXPECT_GE(trace.steps[4].max(), trace.steps[0].max() * 0.5);
}

// --- model accuracy & search (integration) -----------------------------------

TEST(ModelAccuracy, EstimateTracksMeasurementBcast) {
  TuneHarness h(machine::make_aries(6, 4));
  Searcher s(h.world, h.han, h.world.world_comm(), small_space());
  const std::size_t m = 4 << 20;
  for (const HanConfig& cfg :
       {cfg_of(256 << 10, "adapt", "sm", Algorithm::Binary, 64 << 10),
        cfg_of(1 << 20, "libnbc", "sm", Algorithm::Binomial, 0)}) {
    const double est = s.estimate_config(CollKind::Bcast, m, cfg);
    const double meas = s.measure_collective(CollKind::Bcast, m, cfg);
    EXPECT_GT(est, 0.0);
    // Paper Fig. 4: "accurate in most cases", trends match. Accept 2x.
    EXPECT_LT(std::abs(est - meas) / meas, 1.0)
        << cfg.to_string() << " est " << est << " meas " << meas;
  }
}

TEST(SearchIntegration, TaskModelMatchesExhaustiveOptimum) {
  TuneHarness h(machine::make_aries(4, 4));
  Searcher s(h.world, h.han, h.world.world_comm(), small_space());
  const std::size_t m = 2 << 20;

  const SearchResult truth = s.exhaustive(CollKind::Bcast, m, false);
  const SearchResult model = s.estimate(CollKind::Bcast, m, false);
  ASSERT_TRUE(truth.best && model.best);

  // Paper Fig. 9: the model's pick performs like the exhaustive best in
  // most cases — require within 20% of the true optimum when re-measured.
  const double model_pick_measured =
      s.measure_collective(CollKind::Bcast, m, model.best->cfg);
  EXPECT_LT(model_pick_measured, truth.best->time * 1.2)
      << "model chose " << model.best->cfg.to_string() << ", truth "
      << truth.best->cfg.to_string();
}

TEST(SearchIntegration, TaskModelCheaperThanExhaustiveAcrossSizes) {
  TuneHarness h(machine::make_aries(4, 4));
  const std::vector<std::size_t> sizes{512 << 10, 2 << 20, 8 << 20};

  Searcher ex(h.world, h.han, h.world.world_comm(), small_space());
  for (std::size_t m : sizes) ex.exhaustive(CollKind::Bcast, m, false);
  const double exhaustive_cost = ex.tuning_cost();

  Searcher tm(h.world, h.han, h.world.world_comm(), small_space());
  tm.prepare(CollKind::Bcast, false);
  for (std::size_t m : sizes) tm.estimate(CollKind::Bcast, m, false);
  const double model_cost = tm.tuning_cost();

  // Paper Fig. 8: 77% reduction at |M| = full sweep; with 3 sizes expect
  // at least some clear advantage.
  EXPECT_LT(model_cost, exhaustive_cost * 0.8)
      << "model " << model_cost << " vs exhaustive " << exhaustive_cost;
}

TEST(SearchIntegration, HeuristicsShrinkSearch) {
  TuneHarness h(machine::make_aries(4, 4));
  Searcher s(h.world, h.han, h.world.world_comm(), small_space());
  const SearchResult full = s.estimate(CollKind::Bcast, 4 << 20, false);
  const SearchResult pruned = s.estimate(CollKind::Bcast, 4 << 20, true);
  EXPECT_LT(pruned.evaluations, full.evaluations);
  EXPECT_GT(pruned.evaluations, 0);
}

TEST(TunerIntegration, TableDrivesHanDecisions) {
  TuneHarness h(machine::make_aries(4, 4));
  Tuner tuner(h.world, h.han, h.world.world_comm(), small_space());
  TunerOptions opt;
  opt.message_sizes = {256 << 10, 4 << 20};
  opt.kinds = {CollKind::Bcast};
  const TuneReport report = tuner.tune(opt);
  EXPECT_EQ(report.table.size(), 2u);
  EXPECT_GT(report.tuning_cost, 0.0);

  tuner.install(report.table);
  const HanConfig decided =
      h.han.decide(CollKind::Bcast, h.world.world_comm(), 4 << 20);
  EXPECT_EQ(decided, report.table.decide(CollKind::Bcast, 4, 4, 4 << 20));
}

TEST(TunerIntegration, ReduceScatterEntriesPickRingAndRoundTrip) {
  TuneHarness h(machine::make_aries(4, 4));
  Tuner tuner(h.world, h.han, h.world.world_comm(), small_space());
  TunerOptions opt;
  opt.message_sizes = {64 << 10, 1 << 20, 16 << 20};
  opt.kinds = {CollKind::ReduceScatter};
  const TuneReport report = tuner.tune(opt);
  EXPECT_EQ(report.table.size(), 3u);
  for (const auto& [key, cfg] : report.table.entries()) {
    EXPECT_EQ(key.kind, CollKind::ReduceScatter);
    EXPECT_FALSE(cfg.imod.empty());
  }
  // At bandwidth-bound sizes the tuned winner is the ring inter module
  // (the crossover ablation shows the trees only win on tiny messages).
  const HanConfig* big = report.table.find(CollKind::ReduceScatter, 4, 4,
                                           16 << 20);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->imod, "ring");

  // Tuned tables round-trip byte-for-byte through the rules-file format.
  const std::string text = report.table.serialize();
  LookupTable back;
  ASSERT_TRUE(LookupTable::deserialize(text, &back));
  EXPECT_EQ(back.serialize(), text);
}

TEST(TunerIntegration, DuplicateSizesAndKindsDeduped) {
  TuneHarness h(machine::make_aries(4, 4));
  TunerOptions canonical;
  canonical.message_sizes = {256 << 10, 4 << 20};
  canonical.kinds = {CollKind::Bcast};
  TunerOptions messy;
  messy.message_sizes = {4 << 20, 256 << 10, 4 << 20, 256 << 10};
  messy.kinds = {CollKind::Bcast, CollKind::Bcast};

  Tuner a(h.world, h.han, h.world.world_comm(), small_space());
  const TuneReport ra = a.tune(canonical);
  Tuner b(h.world, h.han, h.world.world_comm(), small_space());
  const TuneReport rb = b.tune(messy);
  EXPECT_EQ(ra.table.serialize(), rb.table.serialize());
  // Dedup means the repeated entries never re-benchmark: same task count.
  EXPECT_EQ(ra.task_benchmarks, rb.task_benchmarks);
}

// --- mid-level ladder axes (derived hierarchies, docs/HIERARCHY.md) --------

TEST(LadderModel, Depth2MatchesFlatModels) {
  BcastTaskCosts b;
  b.ib0 = PerLeader{{10.0, 12.0}};
  b.sb0 = PerLeader{{3.0, 2.0}};
  b.sbib_stable = PerLeader{{5.0, 4.0}};
  AllreduceTaskCosts a;
  a.sr0 = PerLeader{{1.0}};
  a.irsr = PerLeader{{2.0}};
  a.ibirsr = PerLeader{{3.0}};
  a.sbibirsr_stable = PerLeader{{4.0}};
  a.sbibir = PerLeader{{3.0}};
  a.sbib = PerLeader{{2.0}};
  a.sb = PerLeader{{1.0}};
  MidTaskCosts mid;
  mid.mb = PerLeader{{0.5, 0.25}};
  mid.mr = PerLeader{{0.75, 0.5}};
  MidTaskCosts mid1;
  mid1.mb = PerLeader{{0.5}};
  mid1.mr = PerLeader{{0.75}};
  for (int u : {1, 3, 8}) {
    EXPECT_DOUBLE_EQ(bcast_ladder_model_cost(b, mid, 2, u),
                     bcast_model_cost(b, u));
    EXPECT_DOUBLE_EQ(allreduce_ladder_model_cost(a, mid1, 2, u),
                     allreduce_model_cost(a, u));
  }
}

TEST(LadderModel, Depth3AddsSoloMidCosts) {
  BcastTaskCosts b;
  b.ib0 = PerLeader{{2.0}};
  b.sb0 = PerLeader{{1.0}};
  b.sbib_stable = PerLeader{{2.5}};
  MidTaskCosts mid;
  mid.mb = PerLeader{{0.5}};
  mid.mr = PerLeader{{0.5}};
  // u=3, depth 3: ib(0)=2; ib+mb=2.5; ib+mb+sb=3.0; mb+sb=1.5; sb=1.0.
  EXPECT_DOUBLE_EQ(bcast_ladder_model_cost(b, mid, 3, 3), 10.0);
  for (int u : {1, 4, 16}) {
    EXPECT_GT(bcast_ladder_model_cost(b, mid, 3, u),
              bcast_model_cost(b, u));
  }
}

TEST(MidLevelSearch, AxesCrossOnlyWhenPopulated) {
  SearchSpace flat = small_space();
  const std::vector<HanConfig> base = flat.enumerate(CollKind::Bcast);
  for (const HanConfig& c : base) {
    EXPECT_EQ(c.malg, Algorithm::Default);
    EXPECT_EQ(c.zcs, 0u);
  }
  SearchSpace numa = small_space();
  numa.mid_algs = {Algorithm::Default, Algorithm::Binary};
  numa.zc_switchovers = {0, 256 << 10};
  EXPECT_EQ(numa.enumerate(CollKind::Bcast).size(), base.size() * 4);
}

TEST(MidLevelSearch, ForProfileGrowsAxesOnNumaOnly) {
  const SearchSpace flat =
      SearchSpace::for_profile(machine::make_aries(2, 8));
  EXPECT_TRUE(flat.mid_algs.empty());
  EXPECT_TRUE(flat.zc_switchovers.empty());
  const SearchSpace numa = SearchSpace::for_profile(
      machine::with_numa(machine::make_aries(2, 8), 2));
  EXPECT_FALSE(numa.mid_algs.empty());
  EXPECT_FALSE(numa.zc_switchovers.empty());
}

TEST(MidLevelSearch, HeuristicsPruneMidKnobs) {
  HanConfig c = cfg_of(64 << 10, "adapt", "sm", Algorithm::Binary, 64 << 10);
  c.zcs = 1 << 20;  // far above 2*fs: the copy-in path can never pay off
  EXPECT_FALSE(heuristic_allows(c, CollKind::Bcast, 4 << 20, 64));
  c.zcs = 64 << 10;
  EXPECT_TRUE(heuristic_allows(c, CollKind::Bcast, 4 << 20, 64));
  c.malg = Algorithm::Chain;  // mid chain needs segments to pipeline
  EXPECT_FALSE(heuristic_allows(c, CollKind::Bcast, 128 << 10, 2));
  EXPECT_TRUE(heuristic_allows(c, CollKind::Bcast, 4 << 20, 64));
}

TEST(MidLevelSearch, LadderEstimateTracksMeasurementOnNuma) {
  TuneHarness h(machine::with_numa(machine::make_aries(4, 8), 2));
  ASSERT_EQ(h.han.hierarchy(h.world.world_comm()).depth(), 3);
  Searcher s(h.world, h.han, h.world.world_comm(), small_space());
  const std::size_t m = 4 << 20;
  const HanConfig cfg =
      cfg_of(256 << 10, "adapt", "sm", Algorithm::Binary, 64 << 10);
  const double est = s.estimate_config(CollKind::Bcast, m, cfg);
  const double meas = s.measure_collective(CollKind::Bcast, m, cfg);
  EXPECT_GT(est, 0.0);
  // The additive mid composition keeps Fig. 4's accuracy envelope.
  EXPECT_LT(std::abs(est - meas) / meas, 1.0)
      << "est " << est << " meas " << meas;
}

TEST(MidLevelSearch, TunerGrowsAxesAndTunesOnNuma) {
  TuneHarness h(machine::with_numa(machine::make_aries(2, 8), 2));
  Tuner tuner(h.world, h.han, h.world.world_comm(), small_space());
  EXPECT_FALSE(tuner.searcher().space().mid_algs.empty());
  EXPECT_FALSE(tuner.searcher().space().zc_switchovers.empty());
  TunerOptions opt;
  opt.message_sizes = {256 << 10, 4 << 20};
  opt.kinds = {CollKind::Bcast};
  const TuneReport report = tuner.tune(opt);
  EXPECT_EQ(report.table.size(), 2u);
  EXPECT_GT(report.tuning_cost, 0.0);
  // Tables carrying the per-level knobs still round-trip (format v3).
  const std::string text = report.table.serialize();
  LookupTable back;
  ASSERT_TRUE(LookupTable::deserialize(text, &back));
  EXPECT_EQ(back.serialize(), text);
}

TEST(MidLevelSearch, FlatProfileTunerSpaceUntouched) {
  TuneHarness h(machine::make_aries(2, 8));
  Tuner tuner(h.world, h.han, h.world.world_comm(), small_space());
  EXPECT_TRUE(tuner.searcher().space().mid_algs.empty());
  EXPECT_TRUE(tuner.searcher().space().zc_switchovers.empty());
}

}  // namespace
}  // namespace han::tune

// Fig. 11 reproduction: Netpipe-style point-to-point performance of Open
// MPI vs Cray MPI on the Shaheen II-like machine.
//
// Paper shape: Open MPI's achieved bandwidth sits below Cray MPI's
// between 512B and 2MB — worst between 16KB and 512KB — and both reach
// the same peak. This explains Cray MPI's small-message bcast edge in
// Fig. 10.
//
// Each stack's sweep owns its world, so --jobs 2 runs them concurrently
// with byte-identical output; tracing shares one buffer and stays serial.
#include "bench_util.hpp"
#include "benchkit/netpipe.hpp"
#include "parallel/pool.hpp"
#include "vendor/stack.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const std::size_t max_bytes = args.get_bytes("--max-bytes", 64 << 20);
  const int jobs = static_cast<int>(args.get_long("--jobs", 1));

  bench::print_header("Fig. 11 — P2P performance on Shaheen II (Netpipe)",
                      "ping-pong between the first ranks of two nodes");

  const machine::MachineProfile profile = machine::make_aries(2, 2);
  benchkit::NetpipeOptions opt;
  opt.sizes = bench::ladder4(4, max_bytes);

  bench::Obs obs(args, "fig11_p2p_netpipe");
  const machine::P2pParams cray = vendor::cray_p2p();
  mpi::SimWorld::Options wo;
  wo.p2p_override = &cray;
  mpi::SimWorld ompi_world(profile);
  mpi::SimWorld cray_world(profile, wo);
  mpi::SimWorld* worlds[2] = {&ompi_world, &cray_world};
  const char* suffixes[2] = {".ompi", ".cray"};
  std::vector<benchkit::NetpipePoint> pts[2];
  if (obs.trace_enabled()) {
    for (int i = 0; i < 2; ++i) {
      obs.attach(*worlds[i]);
      pts[i] = benchkit::netpipe(*worlds[i], opt);
      obs.emit(*worlds[i], suffixes[i]);
    }
  } else {
    for (int i = 0; i < 2; ++i) obs.attach(*worlds[i]);
    const auto done = par::parallel_map(
        jobs, 2, [&](int i) { return benchkit::netpipe(*worlds[i], opt); });
    for (int i = 0; i < 2; ++i) {
      pts[i] = done[static_cast<std::size_t>(i)];
      obs.emit(*worlds[i], suffixes[i]);
    }
  }
  const auto& ompi_pts = pts[0];
  const auto& cray_pts = pts[1];

  sim::Table t({"bytes", "ompi GB/s", "cray GB/s", "ompi lat us",
                "cray lat us", "cray/ompi bw"});
  for (std::size_t i = 0; i < opt.sizes.size(); ++i) {
    t.begin_row()
        .cell(sim::format_bytes(opt.sizes[i]))
        .cell(ompi_pts[i].bandwidth_gbps, 3)
        .cell(cray_pts[i].bandwidth_gbps, 3)
        .cell(ompi_pts[i].one_way_sec * 1e6)
        .cell(cray_pts[i].one_way_sec * 1e6)
        .cell(cray_pts[i].bandwidth_gbps / ompi_pts[i].bandwidth_gbps, 2);
  }
  t.print("Netpipe sweep");
  std::printf(
      "\nExpected: cray/ompi ratio well above 1 between 16KB and 512KB, "
      "near 1 at the peak.\n");
  return 0;
}

// Fig. 12 reproduction: MPI_Bcast on the Stampede2-like machine (paper:
// 1536 processes = 32 nodes x 48 ppn), HAN vs Intel MPI vs MVAPICH2 vs
// default Open MPI.
//
// Paper shapes: HAN fastest across the range — up to 1.15x/2.28x/5.35x
// (small) and 1.39x/3.83x/1.73x (large) over Intel / MVAPICH2 / Open MPI.
#include "imb_figure.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 24}, {32, 48});
  const std::size_t max_bytes =
      args.get_bytes("--max-bytes", args.has("--full") ? 128 << 20
                                                       : 32 << 20);

  bench::print_header(
      "Fig. 12 — MPI_Bcast on Stampede2 (opath profile)",
      "nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " (" +
          std::to_string(scale.nodes * scale.ppn) + " procs), up to " +
          sim::format_bytes(max_bytes));

  bench::ImbFigureOptions opt;
  opt.profile = machine::make_opath(scale.nodes, scale.ppn);
  opt.kind = coll::CollKind::Bcast;
  opt.stacks = {"ompi", "intel", "mvapich", "han"};
  opt.sizes = bench::ladder4(4, max_bytes);
  opt.jobs = static_cast<int>(args.get_long("--jobs", 1));
  bench::Obs obs(args, "fig12_bcast_stampede");
  opt.obs = &obs;
  bench::run_imb_figure(opt);
  return 0;
}

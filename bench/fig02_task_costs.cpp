// Fig. 2 reproduction: cost of tasks ib(0), sb(0), concurrent ib+sb, and
// the delayed-start stabilized sbib, per node leader, for 64KB segments on
// 6 nodes with different submodule/algorithm configurations.
//
// What to look for (paper §III-A2):
//  * every leader finishes ib(0) at a different time,
//  * concurrent < ib + sb (overlap is real) but > max(ib, sb) (imperfect),
//  * the delayed-start sbib differs from the naive concurrent measurement —
//    the reason the paper's benchmark delays each leader by T_i(ib(0)).
#include "autotune/taskbench.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale =
      bench::pick_scale(args, {6, 8}, {6, 12});
  const std::size_t seg = args.get_bytes("--segment", 64 << 10);

  bench::print_header(
      "Fig. 2 — cost of tasks ib, sb, concurrent ib+sb, sbib (0 is root)",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) +
          " segment=" + sim::format_bytes(seg));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "fig02_task_costs");
  obs.attach(hw.world, &hw.rt);
  tune::TaskBench tb(hw.world, hw.han, hw.world.world_comm());

  for (const auto& cfg : bench::fig_configs(seg)) {
    tune::PerLeader ib = tb.bench_ib(cfg, seg);
    tune::PerLeader sb = tb.bench_sb(cfg, seg);
    tune::PerLeader both = tb.bench_concurrent_ib_sb(cfg, seg);
    tune::PipelineTrace pipe = tb.bench_sbib_pipeline(cfg, seg, 8, ib);
    tune::PerLeader sbib = pipe.stabilized();

    sim::Table t({"leader", "ib(0) us", "sb(0) us", "concurrent us",
                  "sbib(s) us"});
    for (int l = 0; l < tb.leader_count(); ++l) {
      t.begin_row()
          .cell(l)
          .cell(ib.t[l] * 1e6)
          .cell(sb.t[l] * 1e6)
          .cell(both.t[l] * 1e6)
          .cell(sbib.t[l] * 1e6);
    }
    t.print("config: " + cfg.to_string());

    // The paper's headline checks, printed as explicit verdicts.
    const double overlap_gain = (ib.max() + sb.max()) / both.max();
    const double vs_perfect =
        both.max() / std::max(ib.max(), sb.max());
    std::printf(
        "  overlap: serial/concurrent = %.2fx (>1 => overlap exists), "
        "concurrent/max(ib,sb) = %.2fx (>1 => imperfect)\n",
        overlap_gain, vs_perfect);
    std::printf(
        "  naive concurrent vs delayed-start sbib (max leader): %.2f vs "
        "%.2f us\n",
        both.max() * 1e6, sbib.max() * 1e6);
  }
  obs.emit(hw.world);
  return 0;
}

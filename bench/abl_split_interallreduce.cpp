// Ablation: paper §III-B — "previous studies use inter-node allreduce to
// transfer segments across nodes. We choose to break the inter-node
// allreduce into two explicit operations, the reduce ir and the broadcast
// ib, to further increase the pipeline and improve the performance for
// large messages."
//
// Compares HAN's 4-stage sr→ir→ib→sb pipeline against a 3-stage variant
// whose middle stage is a monolithic inter-node allreduce (recursive
// doubling among leaders), per segment.
#include "autotune/search.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

namespace han::bench {

/// The fused variant: per segment, sr → inter-allreduce → sb.
double measure_fused(HanWorld& hw, std::size_t msg, std::size_t fs) {
  core::Hierarchy& hc = hw.han.flat_hierarchy(hw.world.world_comm());
  auto sync = std::make_shared<mpi::SyncDomain>(hw.world.engine(),
                                                hw.world.world_size());
  auto worst = std::make_shared<double>(0.0);

  hw.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](HanWorld& hw2, core::Hierarchy& hc2,
              std::shared_ptr<mpi::SyncDomain> sync2,
              std::shared_ptr<double> worst2, std::size_t msg2, std::size_t fs2,
              int pr) -> sim::CoTask {
      using coll::CollConfig;
      const coll::Segmenter segs(msg2, fs2, mpi::Datatype::Byte);
      const int u = segs.count();
      const mpi::Comm& low = hc2.low(pr);
      const int me_low = hc2.low_rank(pr);
      const bool leader = me_low == 0;
      coll::CollModule& smod = hw2.mods.sm();
      coll::CollModule& imod = hw2.mods.adapt();

      co_await *sync2->arrive();
      const double t0 = hw2.world.now();
      // 3-stage pipeline: steps t issue sr(t), inter-allreduce(t-1),
      // sb(t-2) concurrently per task.
      for (int t = 0; t <= u + 1; ++t) {
        std::vector<mpi::Request> task;
        if (t <= u - 1) {
          task.push_back(smod.ireduce(low, me_low, 0,
                                      mpi::BufView::timing_only(segs.length(t)),
                                      mpi::BufView::timing_only(segs.length(t)),
                                      mpi::Datatype::Byte, mpi::ReduceOp::Sum,
                                      CollConfig{}));
        }
        if (leader && t >= 1 && t - 1 <= u - 1) {
          task.push_back(imod.iallreduce(
              *hc2.up(pr), hc2.up_rank(pr),
              mpi::BufView::timing_only(segs.length(t - 1)),
              mpi::BufView::timing_only(segs.length(t - 1)),
              mpi::Datatype::Byte, mpi::ReduceOp::Sum, CollConfig{}));
        }
        if (t >= 2 && t - 2 <= u - 1) {
          task.push_back(smod.ibcast(low, me_low, 0,
                                     mpi::BufView::timing_only(segs.length(t - 2)),
                                     mpi::Datatype::Byte, CollConfig{}));
        }
        if (!task.empty()) {
          co_await mpi::wait_all(hw2.world.engine(), std::move(task));
        }
      }
      *worst2 = std::max(*worst2, hw2.world.now() - t0);
    }(hw, hc, sync, worst, msg, fs, rank.world_rank);
  });
  return *worst;
}

}  // namespace han::bench

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 8}, {64, 12});

  bench::print_header(
      "Ablation — split ir+ib vs monolithic inter-node allreduce",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "abl_split_interallreduce");
  obs.attach(hw.world, &hw.rt);
  tune::Searcher searcher(hw.world, hw.han, hw.world.world_comm());

  sim::Table t({"bytes", "fs", "split ir+ib us", "fused allreduce us",
                "split speedup"});
  for (std::size_t msg : {1u << 20, 4u << 20, 16u << 20}) {
    const std::size_t fs = 512 << 10;
    core::HanConfig split_cfg;
    split_cfg.fs = fs;
    split_cfg.imod = "adapt";
    split_cfg.smod = "sm";
    split_cfg.ibalg = coll::Algorithm::Chain;
    split_cfg.iralg = coll::Algorithm::Chain;
    split_cfg.ibs = 64 << 10;
    split_cfg.irs = 64 << 10;
    const double t_split = searcher.measure_collective(
        coll::CollKind::Allreduce, msg, split_cfg);
    const double t_fused = bench::measure_fused(hw, msg, fs);
    t.begin_row()
        .cell(sim::format_bytes(msg))
        .cell(sim::format_bytes(fs))
        .cell(t_split * 1e6)
        .cell(t_fused * 1e6)
        .cell(bench::speedup(t_fused, t_split), 2);
  }
  t.print("inter-level decomposition ablation");
  std::printf(
      "\nExpected: splitting wins for large messages (deeper pipeline, "
      "full-duplex ir/ib overlap).\n");
  obs.emit(hw.world);
  return 0;
}

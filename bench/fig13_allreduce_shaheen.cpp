// Fig. 13 reproduction: MPI_Allreduce on the Shaheen II-like machine.
//
// Paper shapes: HAN far ahead of default Open MPI everywhere; behind Cray
// MPI on small messages (HAN's small-message path uses Libnbc/SM, whose
// reductions are scalar — §IV-A2), overtaking Cray past ~2MB (up to
// ~1.12x).
#include "imb_figure.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {32, 16}, {128, 32});
  const std::size_t max_bytes =
      args.get_bytes("--max-bytes", args.has("--full") ? 128 << 20
                                                       : 32 << 20);

  bench::print_header(
      "Fig. 13 — MPI_Allreduce on Shaheen II (aries profile)",
      "nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " (" +
          std::to_string(scale.nodes * scale.ppn) + " procs), up to " +
          sim::format_bytes(max_bytes));

  bench::ImbFigureOptions opt;
  opt.profile = machine::make_aries(scale.nodes, scale.ppn);
  opt.kind = coll::CollKind::Allreduce;
  opt.stacks = {"ompi", "cray", "han"};
  opt.sizes = bench::ladder4(4, max_bytes);
  opt.jobs = static_cast<int>(args.get_long("--jobs", 1));
  bench::Obs obs(args, "fig13_allreduce_shaheen");
  opt.obs = &obs;
  bench::run_imb_figure(opt);
  return 0;
}

// Ablation (extension): two vs three hardware levels — the paper's future
// work ("explore approaches based on an increased number of hardware
// levels"). On a NUMA machine the 2-level HAN treats each node as flat
// shared memory, dragging every far-socket reader across the inter-socket
// link; the 3-level pipeline (ib → nb → sb) crosses it once per segment.
#include "bench_util.hpp"
#include "coll_support.hpp"
#include "han/han3.hpp"

namespace han::bench {

struct Numa3World : HanWorld {
  explicit Numa3World(machine::MachineProfile profile)
      : HanWorld(std::move(profile)), han3(han) {}
  core::Han3 han3;
};

double timed(Numa3World& hw, bool three_level, std::size_t bytes,
             const core::HanConfig& cfg) {
  auto sync = std::make_shared<mpi::SyncDomain>(hw.world.engine(),
                                                hw.world.world_size());
  auto worst = std::make_shared<double>(0.0);
  hw.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](Numa3World& hw2, std::shared_ptr<mpi::SyncDomain> sync2,
              std::shared_ptr<double> worst2, bool three_level2,
              std::size_t bytes2, core::HanConfig cfg2, int me) -> sim::CoTask {
      co_await *sync2->arrive();
      const double t0 = hw2.world.now();
      mpi::Request r =
          three_level2
              ? hw2.han3.ibcast(hw2.world.world_comm(), me, 0,
                               mpi::BufView::timing_only(bytes2),
                               mpi::Datatype::Byte, cfg2)
              : hw2.han.ibcast_cfg(hw2.world.world_comm(), me, 0,
                                  mpi::BufView::timing_only(bytes2),
                                  mpi::Datatype::Byte, cfg2);
      co_await *r;
      *worst2 = std::max(*worst2, hw2.world.now() - t0);
    }(hw, sync, worst, three_level, bytes, cfg, rank.world_rank);
  });
  return *worst;
}

}  // namespace han::bench

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 16}, {64, 32});
  const int domains = static_cast<int>(args.get_long("--numa", 2));

  bench::print_header(
      "Ablation (extension) — 2-level vs 3-level HAN bcast on NUMA nodes",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " numa=" +
          std::to_string(domains));

  core::HanConfig cfg;
  cfg.fs = 512 << 10;
  cfg.imod = "adapt";
  cfg.smod = "sm";
  cfg.ibalg = coll::Algorithm::Chain;
  cfg.iralg = coll::Algorithm::Chain;
  cfg.ibs = 64 << 10;

  bench::Obs obs(args, "abl_numa_levels");
  sim::Table t({"bytes", "2-level us", "3-level us", "3-level speedup"});
  for (std::size_t bytes : {1u << 20, 4u << 20, 16u << 20}) {
    bench::Numa3World hw(machine::with_numa(
        machine::make_aries(scale.nodes, scale.ppn), domains));
    obs.attach(hw.world, &hw.rt);
    const double t2 = bench::timed(hw, false, bytes, cfg);
    const double t3 = bench::timed(hw, true, bytes, cfg);
    t.begin_row()
        .cell(sim::format_bytes(bytes))
        .cell(t2 * 1e6)
        .cell(t3 * 1e6)
        .cell(bench::speedup(t2, t3), 2);
    std::string suffix = ".";
    suffix += std::to_string(bytes);
    obs.emit(hw.world, suffix);
  }
  t.print("hierarchy-depth ablation (MPI_Bcast)");
  std::printf(
      "\nExpected: the third level wins once the inter-socket link would "
      "otherwise carry every far-socket reader.\n");
  return 0;
}

// Shared driver for the IMB comparison figures (Figs. 10, 12, 13, 14):
// sweep a message ladder over several MPI stacks on one machine profile,
// print the per-size table plus HAN's speedup against every competitor,
// with the small/large split the paper uses (boundary 128KB).
//
// Every stack owns its own simulated world, so the series cells run
// concurrently under --jobs N; results merge in input order and all
// printing happens after the join, so output is byte-identical for every
// N. Trace capture shares one buffer across stacks and keeps the serial
// measure/emit interleave.
#pragma once

#include "bench_util.hpp"
#include "benchkit/imb.hpp"
#include "parallel/pool.hpp"

namespace han::bench {

struct ImbFigureOptions {
  machine::MachineProfile profile;
  coll::CollKind kind = coll::CollKind::Bcast;
  std::vector<std::string> stacks;  // "han" must be included
  std::vector<std::size_t> sizes;
  bool autotune_han = true;
  int jobs = 1;        // concurrent series cells (one per stack)
  Obs* obs = nullptr;  // per-stack reports suffixed ".<stack>"
};

inline void run_imb_figure(const ImbFigureOptions& opt) {
  std::vector<std::unique_ptr<vendor::MpiStack>> stacks;
  for (const std::string& name : opt.stacks) {
    stacks.push_back(vendor::make_stack(name, opt.profile));
    if (opt.obs != nullptr) {
      opt.obs->attach(stacks.back()->world(), &stacks.back()->runtime());
    }
    if (name == "han" && opt.autotune_han) {
      auto* hs = static_cast<vendor::HanStack*>(stacks.back().get());
      tune::TunerOptions topt;
      topt.heuristics = true;
      topt.kinds = {opt.kind};
      topt.message_sizes = {64 << 10, 512 << 10, 4 << 20, 16 << 20};
      const tune::TuneReport report = hs->autotune(topt);
      std::printf("  [han autotuned: %zu table entries, %.3f sim s]\n",
                  report.table.size(), report.tuning_cost);
      std::fflush(stdout);
    }
  }

  benchkit::ImbOptions iopt;
  iopt.sizes = opt.sizes;
  auto measure = [&](std::size_t i) {
    return opt.kind == coll::CollKind::Bcast
               ? benchkit::imb_bcast(*stacks[i], iopt)
               : benchkit::imb_allreduce(*stacks[i], iopt);
  };

  std::vector<std::vector<benchkit::ImbPoint>> results;
  if (opt.obs != nullptr && opt.obs->trace_enabled()) {
    // The Obs tracer is one buffer shared by every attached world: each
    // emit saves and clears it, so tracing requires measuring serially.
    for (std::size_t i = 0; i < stacks.size(); ++i) {
      results.push_back(measure(i));
      std::printf("  measured stack: %s\n", stacks[i]->name().c_str());
      std::fflush(stdout);
      opt.obs->emit(stacks[i]->world(), "." + stacks[i]->name());
    }
  } else {
    results = par::parallel_map(
        opt.jobs, static_cast<int>(stacks.size()),
        [&](int i) { return measure(static_cast<std::size_t>(i)); });
    for (std::size_t i = 0; i < stacks.size(); ++i) {
      std::printf("  measured stack: %s\n", stacks[i]->name().c_str());
      std::fflush(stdout);
      if (opt.obs != nullptr) {
        opt.obs->emit(stacks[i]->world(), "." + stacks[i]->name());
      }
    }
  }

  std::size_t han_idx = 0;
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    if (stacks[i]->name() == "han") han_idx = i;
  }

  std::vector<std::string> header{"bytes"};
  for (auto& s : stacks) header.push_back(s->name() + " us");
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    if (i != han_idx) header.push_back("han vs " + stacks[i]->name());
  }
  sim::Table t(std::move(header));

  std::vector<double> small_best(stacks.size(), 0.0);
  std::vector<double> large_best(stacks.size(), 0.0);
  for (std::size_t row = 0; row < opt.sizes.size(); ++row) {
    t.begin_row().cell(sim::format_bytes(opt.sizes[row]));
    for (auto& r : results) t.cell(r[row].avg_sec * 1e6);
    for (std::size_t i = 0; i < stacks.size(); ++i) {
      if (i == han_idx) continue;
      const double sp =
          speedup(results[i][row].avg_sec, results[han_idx][row].avg_sec);
      t.cell(sp, 2);
      auto& best =
          opt.sizes[row] <= (128u << 10) ? small_best[i] : large_best[i];
      best = std::max(best, sp);
    }
  }
  t.print("per-size comparison (avg of max-across-ranks, usec)");

  std::printf("\nmax HAN speedup (small <= 128KB / large > 128KB):\n");
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    if (i == han_idx) continue;
    std::printf("  vs %-8s : %.2fx small, %.2fx large\n",
                stacks[i]->name().c_str(), small_best[i], large_best[i]);
  }
}

}  // namespace han::bench

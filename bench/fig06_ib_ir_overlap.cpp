// Fig. 6 reproduction: the overlap between ib (inter-node broadcast) and
// ir (inter-node reduce). They ride opposite directions of the full-duplex
// fabric, so running them concurrently should cost far less than their
// sum — the property HAN's allreduce exploits by splitting the inter-node
// allreduce into explicit ir + ib with the same algorithm and root.
#include "bench_util.hpp"
#include "coll_support.hpp"

namespace han::bench {

struct OverlapResult {
  double ib_max = 0.0;
  double ir_max = 0.0;
  double both_max = 0.0;
};

OverlapResult measure_overlap(HanWorld& hw, const core::HanConfig& cfg,
                              std::size_t seg) {
  using coll::CollConfig;
  core::Hierarchy& hc = hw.han.flat_hierarchy(hw.world.world_comm());
  coll::CollModule* imod = hw.han.inter_module(cfg);
  const CollConfig ibcfg{cfg.ibalg, cfg.ibs};
  const CollConfig ircfg{cfg.iralg, cfg.irs};

  OverlapResult result;
  auto run_phase = [&](int phase, double* out) {
    auto sync = std::make_shared<mpi::SyncDomain>(hw.world.engine(),
                                                  hw.world.world_size());
    auto worst = std::make_shared<double>(0.0);
    hw.world.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](HanWorld& hw3, core::Hierarchy& hc2, coll::CollModule* imod2,
                CollConfig ibcfg2, CollConfig ircfg2,
                std::shared_ptr<mpi::SyncDomain> sync2,
                std::shared_ptr<double> worst3, std::size_t seg2, int phase2,
                int pr) -> sim::CoTask {
        co_await *sync2->arrive();
        if (hc2.low_rank(pr) != 0) co_return;
        const mpi::Comm& up = *hc2.up(pr);
        const int me = hc2.up_rank(pr);
        const double t0 = hw3.world.now();
        std::vector<mpi::Request> task;
        if (phase2 == 0 || phase2 == 2) {
          task.push_back(imod2->ibcast(up, me, 0,
                                      mpi::BufView::timing_only(seg2),
                                      mpi::Datatype::Byte, ibcfg2));
        }
        if (phase2 == 1 || phase2 == 2) {
          task.push_back(imod2->ireduce(up, me, 0,
                                       mpi::BufView::timing_only(seg2),
                                       mpi::BufView::timing_only(seg2),
                                       mpi::Datatype::Byte,
                                       mpi::ReduceOp::Sum, ircfg2));
        }
        co_await mpi::wait_all(hw3.world.engine(), std::move(task));
        *worst3 = std::max(*worst3, hw3.world.now() - t0);
      }(hw, hc, imod, ibcfg, ircfg, sync, worst, seg, phase,
        rank.world_rank);
    });
    *out = *worst;
  };
  run_phase(0, &result.ib_max);
  run_phase(1, &result.ir_max);
  run_phase(2, &result.both_max);
  return result;
}

/// The production path of the same property: a full HAN allreduce, whose
/// task graph pipelines ir against ib across segments (paper Fig. 5). Run
/// through HanModule so the emitted report carries the scheduler's
/// han.task.* counters alongside the isolated two-task measurement above.
double han_allreduce(HanWorld& hw, const core::HanConfig& cfg,
                     std::size_t msg) {
  auto worst = std::make_shared<double>(0.0);
  hw.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](HanWorld& hw2, core::HanConfig cfg2, std::size_t msg2,
              std::shared_ptr<double> worst2, int pr) -> sim::CoTask {
      const double t0 = hw2.world.now();
      mpi::Request r = hw2.han.iallreduce_cfg(
          hw2.world.world_comm(), pr, mpi::BufView::timing_only(msg2),
          mpi::BufView::timing_only(msg2), mpi::Datatype::Byte,
          mpi::ReduceOp::Sum, cfg2);
      co_await *r;
      *worst2 = std::max(*worst2, hw2.world.now() - t0);
    }(hw, cfg, msg, worst, rank.world_rank);
  });
  return *worst;
}

}  // namespace han::bench

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 8}, {64, 12});
  const std::size_t seg = args.get_bytes("--segment", 512 << 10);

  bench::print_header(
      "Fig. 6 — overlap between ib and ir on the full-duplex network",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) +
          " segment=" + sim::format_bytes(seg));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "fig06_ib_ir_overlap");
  obs.attach(hw.world, &hw.rt);

  sim::Table t({"config", "ib us", "ir us", "ib+ir concurrent us",
                "serial/concurrent", "vs perfect overlap"});
  for (const auto& cfg : bench::fig_configs(seg)) {
    const bench::OverlapResult r = bench::measure_overlap(hw, cfg, seg);
    t.begin_row()
        .cell(cfg.imod + "/" + coll::algorithm_name(cfg.ibalg))
        .cell(r.ib_max * 1e6)
        .cell(r.ir_max * 1e6)
        .cell(r.both_max * 1e6)
        .cell((r.ib_max + r.ir_max) / r.both_max, 2)
        .cell(r.both_max / std::max(r.ib_max, r.ir_max), 2);
  }
  t.print("ib/ir overlap per configuration");
  std::printf(
      "\nExpected: serial/concurrent well above 1 (high overlap via "
      "opposite full-duplex directions).\n");

  // End-to-end: the pipelined HAN allreduce exploiting the same overlap,
  // executed through the task graphs (emits han.task.* counters).
  {
    core::HanConfig cfg;
    cfg.fs = seg;
    cfg.imod = "adapt";
    cfg.smod = "sm";
    cfg.ibalg = coll::Algorithm::Binary;
    cfg.iralg = coll::Algorithm::Binary;
    cfg.ibs = 64 << 10;
    cfg.irs = 64 << 10;
    const std::size_t msg = 8 * seg;  // 8-segment pipeline
    const double t_han = bench::han_allreduce(hw, cfg, msg);
    std::printf(
        "\nHAN task-graph allreduce of %s (fs=%s): %.1f us — ir/ib stages "
        "overlap per segment via the scheduler.\n",
        sim::format_bytes(msg).c_str(), sim::format_bytes(seg).c_str(),
        t_han * 1e6);
  }
  obs.emit(hw.world);
  return 0;
}

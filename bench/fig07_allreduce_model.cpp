// Fig. 7 reproduction: cost-model estimate vs measured time of a 4MB
// MPI_Allreduce across configurations. The paper's example outcome: the
// model predicts 1MB segments + ADAPT binary + SOLO as optimal, matching
// the measurement.
#include "autotune/search.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 8}, {64, 12});
  const std::size_t msg = args.get_bytes("--bytes", 4 << 20);

  bench::print_header(
      "Fig. 7 — MPI_Allreduce cost model vs measurement, 4MB",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) +
          " message=" + sim::format_bytes(msg));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "fig07_allreduce_model");
  obs.attach(hw.world, &hw.rt);
  tune::Searcher searcher(hw.world, hw.han, hw.world.world_comm());

  const std::vector<std::size_t> segments{256 << 10, 512 << 10, 1 << 20};
  core::HanConfig best_est_cfg, best_meas_cfg;
  double best_est = 1e300, best_meas = 1e300;

  for (const char* smod : {"sm", "solo"}) {
    for (const auto& base : bench::fig_configs(64 << 10)) {
      sim::Table t({"segment", "estimated us", "measured us", "error %"});
      for (std::size_t fs : segments) {
        core::HanConfig cfg = base;
        cfg.fs = fs;
        cfg.smod = smod;
        const double est =
            searcher.estimate_config(coll::CollKind::Allreduce, msg, cfg);
        const double meas =
            searcher.measure_collective(coll::CollKind::Allreduce, msg, cfg);
        t.begin_row()
            .cell(sim::format_bytes(fs))
            .cell(est * 1e6)
            .cell(meas * 1e6)
            .cell(100.0 * (est - meas) / meas, 1);
        if (est < best_est) {
          best_est = est;
          best_est_cfg = cfg;
        }
        if (meas < best_meas) {
          best_meas = meas;
          best_meas_cfg = cfg;
        }
      }
      t.print("combo: " + base.imod + "/" +
              std::string(coll::algorithm_name(base.iralg)) + " + " + smod);
    }
  }

  std::printf("\nmodel-predicted optimum : %s (est %.2f us)\n",
              best_est_cfg.to_string().c_str(), best_est * 1e6);
  std::printf("measured optimum        : %s (%.2f us)\n",
              best_meas_cfg.to_string().c_str(), best_meas * 1e6);
  if (best_est_cfg == best_meas_cfg) {
    std::printf("prediction MATCHES the measured optimum\n");
  } else {
    // The paper's accuracy criterion is the pick's delivered performance,
    // not config identity: re-measure the model's choice.
    const double pick_meas = searcher.measure_collective(
        coll::CollKind::Allreduce, msg, best_est_cfg);
    std::printf(
        "prediction differs; its measured time %.2f us is within %.1f%% "
        "of the optimum\n",
        pick_meas * 1e6, 100.0 * (pick_meas - best_meas) / best_meas);
  }
  obs.emit(hw.world);
  return 0;
}

// Fig. 3 reproduction: per-step cost of sbib(i), i = 1..8, on one node
// leader, for each submodule/algorithm combination. The paper's
// observation: the first steps pay pipeline-fill delays, then the cost
// stabilizes — which is what licenses modeling the steady state with a
// single stabilized value (eq. 3).
#include "autotune/taskbench.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {6, 8}, {6, 12});
  const std::size_t seg = args.get_bytes("--segment", 64 << 10);
  const int steps = static_cast<int>(args.get_long("--steps", 8));
  const int leader = static_cast<int>(args.get_long("--leader", 2));

  bench::print_header(
      "Fig. 3 — cost of sbib(i) on one node leader, i = 1..8",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " segment=" +
          sim::format_bytes(seg) + " leader=" + std::to_string(leader));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "fig03_sbib_stabilize");
  obs.attach(hw.world, &hw.rt);
  tune::TaskBench tb(hw.world, hw.han, hw.world.world_comm());

  sim::Table t([&] {
    std::vector<std::string> header{"config"};
    for (int i = 1; i <= steps; ++i) {
      header.push_back("sbib(" + std::to_string(i) + ") us");
    }
    header.push_back("stabilized us");
    return header;
  }());

  for (const auto& cfg : bench::fig_configs(seg)) {
    const tune::PerLeader ib = tb.bench_ib(cfg, seg);
    const tune::PipelineTrace trace =
        tb.bench_sbib_pipeline(cfg, seg, steps, ib);
    t.begin_row().cell(cfg.imod + "/" +
                       coll::algorithm_name(cfg.ibalg));
    for (int i = 0; i < steps; ++i) {
      t.cell(trace.steps[i].t.at(leader) * 1e6);
    }
    t.cell(trace.stabilized().t.at(leader) * 1e6);
  }
  t.print("per-step sbib cost on leader " + std::to_string(leader));
  std::printf(
      "\nExpected shape: early steps above the stabilized value, late "
      "steps flat (pipeline filled).\n");
  obs.emit(hw.world);
  return 0;
}

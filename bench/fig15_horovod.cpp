// Fig. 15 reproduction: Horovod-style AlexNet training throughput on the
// Stampede2-like machine, scaling the worker count. Paper shape: HAN's
// gain over default Open MPI and Intel MPI grows with scale, reaching
// ~24.3% and ~9.1% at 1536 processes.
#include "apps/horovod.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const int ppn =
      static_cast<int>(args.get_long("--ppn", args.has("--full") ? 48 : 24));
  std::vector<int> node_counts{4, 8, 16};
  if (args.has("--full")) node_counts = {8, 16, 32};

  apps::HorovodOptions opt;
  opt.model_bytes = args.get_bytes("--model", 244ull << 20);
  opt.fusion_bytes = args.get_bytes("--fusion", 64 << 20);

  bench::print_header(
      "Fig. 15 — Horovod (AlexNet, synthetic data) on Stampede2",
      "model=" + sim::format_bytes(opt.model_bytes) + " fusion=" +
          sim::format_bytes(opt.fusion_bytes) + " ppn=" +
          std::to_string(ppn));

  bench::Obs obs(args, "fig15_horovod");
  sim::Table t({"workers", "ompi img/s", "intel img/s", "han img/s",
                "han vs ompi %", "han vs intel %"});
  for (int nodes : node_counts) {
    const machine::MachineProfile profile = machine::make_opath(nodes, ppn);
    double imgs[3] = {0, 0, 0};
    const char* names[3] = {"ompi", "intel", "han"};
    for (int i = 0; i < 3; ++i) {
      auto stack = vendor::make_stack(names[i], profile);
      obs.attach(stack->world(), &stack->runtime());
      if (i == 2) {
        auto* hs = static_cast<vendor::HanStack*>(stack.get());
        tune::TunerOptions topt;
        topt.heuristics = true;
        topt.kinds = {coll::CollKind::Allreduce};
        topt.message_sizes = {opt.fusion_bytes};
        hs->autotune(topt);
      }
      imgs[i] = apps::run_horovod(*stack, opt).images_per_sec;
      std::printf("  %d workers / %s done\n", nodes * ppn, names[i]);
      std::fflush(stdout);
      std::string suffix = ".";
      suffix += std::to_string(nodes * ppn);
      suffix += ".";
      suffix += names[i];
      obs.emit(stack->world(), suffix);
    }
    t.begin_row()
        .cell(std::to_string(nodes * ppn))
        .cell(imgs[0], 1)
        .cell(imgs[1], 1)
        .cell(imgs[2], 1)
        .cell(100.0 * (imgs[2] / imgs[0] - 1.0), 2)
        .cell(100.0 * (imgs[2] / imgs[1] - 1.0), 2);
  }
  t.print("training throughput (higher is better)");
  std::printf("\nExpected: HAN's advantage grows with the worker count.\n");
  return 0;
}

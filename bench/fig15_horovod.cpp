// Fig. 15 reproduction: Horovod-style AlexNet training throughput on the
// Stampede2-like machine, scaling the worker count. Paper shape: HAN's
// gain over default Open MPI and Intel MPI grows with scale, reaching
// ~24.3% and ~9.1% at 1536 processes.
//
// Every (worker count, stack) cell owns its world, so --jobs N runs the
// cells concurrently; prints, reports, and table rows are emitted after
// the join in input order, so output is byte-identical for every N.
// Tracing shares one buffer across cells and stays serial.
#include <memory>

#include "apps/horovod.hpp"
#include "bench_util.hpp"
#include "parallel/pool.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const int ppn =
      static_cast<int>(args.get_long("--ppn", args.has("--full") ? 48 : 24));
  const int jobs = static_cast<int>(args.get_long("--jobs", 1));
  std::vector<int> node_counts{4, 8, 16};
  if (args.has("--full")) node_counts = {8, 16, 32};

  apps::HorovodOptions opt;
  opt.model_bytes = args.get_bytes("--model", 244ull << 20);
  opt.fusion_bytes = args.get_bytes("--fusion", 64 << 20);

  bench::print_header(
      "Fig. 15 — Horovod (AlexNet, synthetic data) on Stampede2",
      "model=" + sim::format_bytes(opt.model_bytes) + " fusion=" +
          sim::format_bytes(opt.fusion_bytes) + " ppn=" +
          std::to_string(ppn));

  bench::Obs obs(args, "fig15_horovod");
  static const char* kNames[3] = {"ompi", "intel", "han"};
  struct Cell {
    int nodes = 0;
    int stack_idx = 0;
    std::unique_ptr<vendor::MpiStack> stack;
    double imgs = 0.0;
  };
  auto run_cell = [&](Cell c) {
    const machine::MachineProfile profile = machine::make_opath(c.nodes, ppn);
    c.stack = vendor::make_stack(kNames[c.stack_idx], profile);
    obs.attach(c.stack->world(), &c.stack->runtime());
    if (c.stack_idx == 2) {
      auto* hs = static_cast<vendor::HanStack*>(c.stack.get());
      tune::TunerOptions topt;
      topt.heuristics = true;
      topt.kinds = {coll::CollKind::Allreduce};
      topt.message_sizes = {opt.fusion_bytes};
      hs->autotune(topt);
    }
    c.imgs = apps::run_horovod(*c.stack, opt).images_per_sec;
    return c;
  };
  std::vector<Cell> cells;
  for (int nodes : node_counts) {
    for (int i = 0; i < 3; ++i) {
      Cell c;
      c.nodes = nodes;
      c.stack_idx = i;
      cells.push_back(std::move(c));
    }
  }
  std::vector<Cell> done;
  if (obs.trace_enabled()) {
    // The shared trace buffer needs each cell's emit right after its run.
    for (Cell& c : cells) {
      done.push_back(run_cell(std::move(c)));
      const Cell& d = done.back();
      std::printf("  %d workers / %s done\n", d.nodes * ppn,
                  kNames[d.stack_idx]);
      std::fflush(stdout);
      obs.emit(d.stack->world(), "." + std::to_string(d.nodes * ppn) + "." +
                                     kNames[d.stack_idx]);
    }
  } else {
    done = par::parallel_map(jobs, static_cast<int>(cells.size()), [&](int i) {
      return run_cell(std::move(cells[static_cast<std::size_t>(i)]));
    });
    for (const Cell& d : done) {
      std::printf("  %d workers / %s done\n", d.nodes * ppn,
                  kNames[d.stack_idx]);
      std::fflush(stdout);
      obs.emit(d.stack->world(), "." + std::to_string(d.nodes * ppn) + "." +
                                     kNames[d.stack_idx]);
    }
  }

  sim::Table t({"workers", "ompi img/s", "intel img/s", "han img/s",
                "han vs ompi %", "han vs intel %"});
  for (std::size_t n = 0; n < node_counts.size(); ++n) {
    double imgs[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) imgs[i] = done[n * 3 + i].imgs;
    t.begin_row()
        .cell(std::to_string(node_counts[n] * ppn))
        .cell(imgs[0], 1)
        .cell(imgs[1], 1)
        .cell(imgs[2], 1)
        .cell(100.0 * (imgs[2] / imgs[0] - 1.0), 2)
        .cell(100.0 * (imgs[2] / imgs[1] - 1.0), 2);
  }
  t.print("training throughput (higher is better)");
  std::printf("\nExpected: HAN's advantage grows with the worker count.\n");
  return 0;
}

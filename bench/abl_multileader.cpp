// Ablation (extension): multi-leader allreduce. The paper's related work
// (Bayatpour et al. [20]) creates multiple node leaders to parallelize
// leader-side work; HAN's future work contemplates more hierarchy levels.
// Our up-communicator-per-local-rank construction supports striping the
// segment pipeline over k leaders directly — this bench measures what that
// buys as node width grows.
#include "autotune/search.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

namespace han::bench {

double measure_multileader(HanWorld& hw, std::size_t msg,
                           const core::HanConfig& cfg, int k) {
  auto sync = std::make_shared<mpi::SyncDomain>(hw.world.engine(),
                                                hw.world.world_size());
  auto worst = std::make_shared<double>(0.0);
  hw.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](HanWorld& hw2, std::shared_ptr<mpi::SyncDomain> sync2,
              std::shared_ptr<double> worst2, std::size_t msg2,
              core::HanConfig cfg2, int k2, int me) -> sim::CoTask {
      co_await *sync2->arrive();
      const double t0 = hw2.world.now();
      mpi::Request r = hw2.han.iallreduce_multileader(
          hw2.world.world_comm(), me, mpi::BufView::timing_only(msg2),
          mpi::BufView::timing_only(msg2), mpi::Datatype::Byte,
          mpi::ReduceOp::Sum, cfg2, k2);
      co_await *r;
      *worst2 = std::max(*worst2, hw2.world.now() - t0);
    }(hw, sync, worst, msg, cfg, k, rank.world_rank);
  });
  return *worst;
}

}  // namespace han::bench

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 16}, {64, 32});

  bench::print_header(
      "Ablation (extension) — multi-leader allreduce striping",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "abl_multileader");
  obs.attach(hw.world, &hw.rt);

  core::HanConfig cfg;
  cfg.fs = 512 << 10;
  cfg.imod = "adapt";
  cfg.smod = "sm";
  cfg.ibalg = coll::Algorithm::Chain;
  cfg.iralg = coll::Algorithm::Chain;
  cfg.ibs = 64 << 10;
  cfg.irs = 64 << 10;

  sim::Table t({"bytes", "k=1 us", "k=2 us", "k=4 us", "best k",
                "speedup vs k=1"});
  for (std::size_t msg : {4u << 20, 16u << 20}) {
    double times[3];
    const int ks[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      times[i] = bench::measure_multileader(hw, msg, cfg, ks[i]);
    }
    const int best =
        static_cast<int>(std::min_element(times, times + 3) - times);
    t.begin_row()
        .cell(sim::format_bytes(msg))
        .cell(times[0] * 1e6)
        .cell(times[1] * 1e6)
        .cell(times[2] * 1e6)
        .cell(ks[best])
        .cell(times[0] / times[best], 2);
  }
  t.print("multi-leader striping (lower is better)");
  std::printf(
      "\nOn this single-rail fabric the NIC, not the leader CPU, is the "
      "bottleneck, so extra leaders only add contention (k=1 wins) — "
      "consistent with HAN's single-leader design choice; multi-leader "
      "designs pay off on multi-rail NICs.\n");
  obs.emit(hw.world);
  return 0;
}

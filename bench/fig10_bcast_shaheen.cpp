// Fig. 10 reproduction: MPI_Bcast on the Shaheen II-like machine (paper:
// 4096 processes = 128 nodes x 32 ppn), HAN vs Cray MPI vs default Open
// MPI, small (<=128KB) and large message ranges.
//
// Paper shapes to match: HAN up to ~4.7x (small) / ~7.4x (large) over the
// default Open MPI; Cray MPI slightly ahead of HAN on small messages
// (better P2P, Fig. 11), HAN up to ~2.3x ahead on large messages
// (cross-level pipelining).
#include "imb_figure.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {32, 16}, {128, 32});
  const std::size_t max_bytes =
      args.get_bytes("--max-bytes", args.has("--full") ? 128 << 20
                                                       : 32 << 20);

  bench::print_header(
      "Fig. 10 — MPI_Bcast on Shaheen II (aries profile)",
      "nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " (" +
          std::to_string(scale.nodes * scale.ppn) + " procs), up to " +
          sim::format_bytes(max_bytes));

  bench::ImbFigureOptions opt;
  opt.profile = machine::make_aries(scale.nodes, scale.ppn);
  opt.kind = coll::CollKind::Bcast;
  opt.stacks = {"ompi", "cray", "han"};
  opt.sizes = bench::ladder4(4, max_bytes);
  opt.jobs = static_cast<int>(args.get_long("--jobs", 1));
  bench::Obs obs(args, "fig10_bcast_shaheen");
  opt.obs = &obs;
  bench::run_imb_figure(opt);
  return 0;
}

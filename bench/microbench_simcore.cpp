// Google-benchmark microbenchmarks of the simulator core itself: event
// engine throughput, flow network rebalancing, P2P message rate, and
// end-to-end collective simulation speed. These guard the simulator's
// wall-clock performance (the figures sweep millions of events).
#include <benchmark/benchmark.h>

#include "coll/registry.hpp"
#include "han/han.hpp"

namespace {

using namespace han;

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      e.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    e.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1 << 10)->Arg(1 << 14);

void BM_EngineCancelHeavy(benchmark::State& state) {
  // Retry-timer shape: most events are cancelled before they fire. Guards
  // O(1) cancellation, eager slot reclamation, and stale-entry compaction.
  const int n = static_cast<int>(state.range(0));
  std::vector<sim::EventId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    sim::Engine e;
    int fired = 0;
    ids.clear();
    for (int i = 0; i < n; ++i) {
      ids.push_back(e.schedule_at(static_cast<double>(i % 257),
                                  [&fired] { ++fired; }));
    }
    for (int i = 0; i < n; ++i) {
      if (i % 4 != 0) e.cancel(ids[i]);  // 75% never fire
    }
    e.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineCancelHeavy)->Arg(1 << 12);

void BM_FlownetChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    net::FlowNet fn(e);
    std::vector<net::ResourceId> res;
    for (int i = 0; i < 16; ++i) {
      res.push_back(fn.add_resource("r", 1e9));
    }
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      const net::ResourceId path[] = {res[i % 16], res[(i + 5) % 16]};
      fn.start_flow(path, 1e6, net::FlowNet::no_cap(), [&done] { ++done; });
    }
    e.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlownetChurn)->Arg(64)->Arg(512);

void BM_FlownetRebalanceLargeComponent(benchmark::State& state) {
  // One connected component spanning every resource: staggered completions
  // force repeated full-component water-filling passes — the worst case
  // for collect_component and the progressive-filling loop.
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    net::FlowNet fn(e);
    std::vector<net::ResourceId> res;
    for (int i = 0; i < 32; ++i) {
      res.push_back(fn.add_resource("r", 1e9));
    }
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      // Chained paths {i, i+1} keep the component connected; distinct
      // sizes stagger the completions so every finish triggers a
      // rebalance of the surviving component.
      const net::ResourceId path[] = {res[i % 32], res[(i + 1) % 32]};
      fn.start_flow(path, 1e6 * (1.0 + 0.03 * static_cast<double>(i % 29)),
                    net::FlowNet::no_cap(), [&done] { ++done; });
    }
    e.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlownetRebalanceLargeComponent)->Arg(256);

void BM_P2pMessageRate(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::SimWorld w(machine::make_aries(2, 1));
    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      if (rank.world_rank == 0) {
        return [](mpi::SimWorld& w6, int msgs3) -> sim::CoTask {
          for (int i = 0; i < msgs3; ++i) {
            mpi::Request r = w6.isend(w6.world_comm(), 0, 1, i,
                                     mpi::BufView::timing_only(4096));
            co_await *r;
          }
        }(w, msgs);
      }
      return [](mpi::SimWorld& w5, int msgs2) -> sim::CoTask {
        for (int i = 0; i < msgs2; ++i) {
          mpi::Request r = w5.irecv(w5.world_comm(), 1, 0, i,
                                   mpi::BufView::timing_only(4096));
          co_await *r;
        }
      }(w, msgs);
    });
    benchmark::DoNotOptimize(w.messages_sent());
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_P2pMessageRate)->Arg(256);

void BM_HanBcastEndToEnd(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::SimWorld w(machine::make_aries(nodes, 8));
    coll::CollRuntime rt(w);
    coll::ModuleSet mods(w, rt);
    core::HanModule han(w, rt, mods);
    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w4, core::HanModule& han4,
                int me) -> sim::CoTask {
        mpi::Request r = han4.ibcast(w4.world_comm(), me, 0,
                                    mpi::BufView::timing_only(4 << 20),
                                    mpi::Datatype::Byte, coll::CollConfig{});
        co_await *r;
      }(w, han, rank.world_rank);
    });
    benchmark::DoNotOptimize(w.now());
  }
}
BENCHMARK(BM_HanBcastEndToEnd)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_HanAllreduceWindowed(benchmark::State& state) {
  // Windowed task-graph issue loop: window > 1 keeps several pipeline
  // steps in flight, exercising the scheduler's ready-set management
  // rather than the lock-step wait-all path.
  const int window = static_cast<int>(state.range(0));
  core::HanConfig cfg;
  cfg.fs = 256 << 10;
  cfg.window = window;
  for (auto _ : state) {
    mpi::SimWorld w(machine::make_aries(4, 8));
    coll::CollRuntime rt(w);
    coll::ModuleSet mods(w, rt);
    core::HanModule han(w, rt, mods);
    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w3, core::HanModule& han3, int me,
                const core::HanConfig& cfg3) -> sim::CoTask {
        mpi::Request r = han3.iallreduce_cfg(
            w3.world_comm(), me, mpi::BufView::timing_only(4 << 20),
            mpi::BufView::timing_only(4 << 20), mpi::Datatype::Byte,
            mpi::ReduceOp::Sum, cfg3);
        co_await *r;
      }(w, han, rank.world_rank, cfg);
    });
    benchmark::DoNotOptimize(w.now());
  }
}
BENCHMARK(BM_HanAllreduceWindowed)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_HanRingReduceScatterEndToEnd(benchmark::State& state) {
  // Ring reduce-scatter across leaders: long dependency chains of small
  // flows — the han::ring subsystem's hot shape.
  const int nodes = static_cast<int>(state.range(0));
  core::HanConfig cfg;
  cfg.imod = "ring";
  cfg.smod = "sm";
  cfg.fs = 1 << 20;
  for (auto _ : state) {
    mpi::SimWorld w(machine::make_aries(nodes, 8));
    coll::CollRuntime rt(w);
    coll::ModuleSet mods(w, rt);
    core::HanModule han(w, rt, mods);
    const std::size_t bytes = 8 << 20;
    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w2, core::HanModule& han2, int me,
                const core::HanConfig& cfg2, std::size_t bytes2) -> sim::CoTask {
        const auto procs = static_cast<std::size_t>(w2.world_size());
        mpi::Request r = han2.ireduce_scatter_cfg(
            w2.world_comm(), me, mpi::BufView::timing_only(bytes2),
            mpi::BufView::timing_only(bytes2 / procs), mpi::Datatype::Byte,
            mpi::ReduceOp::Sum, cfg2);
        co_await *r;
      }(w, han, rank.world_rank, cfg, bytes);
    });
    benchmark::DoNotOptimize(w.now());
  }
}
BENCHMARK(BM_HanRingReduceScatterEndToEnd)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

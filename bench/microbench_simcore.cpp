// Google-benchmark microbenchmarks of the simulator core itself: event
// engine throughput, flow network rebalancing, P2P message rate, and
// end-to-end collective simulation speed. These guard the simulator's
// wall-clock performance (the figures sweep millions of events).
#include <benchmark/benchmark.h>

#include "coll/registry.hpp"
#include "han/han.hpp"

namespace {

using namespace han;

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      e.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    e.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1 << 10)->Arg(1 << 14);

void BM_FlownetChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    net::FlowNet fn(e);
    std::vector<net::ResourceId> res;
    for (int i = 0; i < 16; ++i) {
      res.push_back(fn.add_resource("r", 1e9));
    }
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      const net::ResourceId path[] = {res[i % 16], res[(i + 5) % 16]};
      fn.start_flow(path, 1e6, net::FlowNet::no_cap(), [&done] { ++done; });
    }
    e.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlownetChurn)->Arg(64)->Arg(512);

void BM_P2pMessageRate(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::SimWorld w(machine::make_aries(2, 1));
    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      if (rank.world_rank == 0) {
        return [](mpi::SimWorld& w, int msgs) -> sim::CoTask {
          for (int i = 0; i < msgs; ++i) {
            mpi::Request r = w.isend(w.world_comm(), 0, 1, i,
                                     mpi::BufView::timing_only(4096));
            co_await *r;
          }
        }(w, msgs);
      }
      return [](mpi::SimWorld& w, int msgs) -> sim::CoTask {
        for (int i = 0; i < msgs; ++i) {
          mpi::Request r = w.irecv(w.world_comm(), 1, 0, i,
                                   mpi::BufView::timing_only(4096));
          co_await *r;
        }
      }(w, msgs);
    });
    benchmark::DoNotOptimize(w.messages_sent());
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_P2pMessageRate)->Arg(256);

void BM_HanBcastEndToEnd(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::SimWorld w(machine::make_aries(nodes, 8));
    coll::CollRuntime rt(w);
    coll::ModuleSet mods(w, rt);
    core::HanModule han(w, rt, mods);
    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w, core::HanModule& han,
                int me) -> sim::CoTask {
        mpi::Request r = han.ibcast(w.world_comm(), me, 0,
                                    mpi::BufView::timing_only(4 << 20),
                                    mpi::Datatype::Byte, coll::CollConfig{});
        co_await *r;
      }(w, han, rank.world_rank);
    });
    benchmark::DoNotOptimize(w.now());
  }
}
BENCHMARK(BM_HanBcastEndToEnd)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

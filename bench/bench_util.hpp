// Shared plumbing for the per-figure bench binaries: tiny flag parser,
// scale presets, result-table helpers, and the common observability flags
// (--metrics <base> / --trace <base>, see docs/OBSERVABILITY.md).
//
// Every bench defaults to a scale that finishes in roughly a minute on a
// laptop-class core while preserving the paper's figure shapes; pass
// --full to run the paper's exact process counts (slower), or override
// --nodes/--ppn/--max-bytes directly. EXPERIMENTS.md records the defaults
// used for the committed results.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "coll/runtime.hpp"
#include "obs/report.hpp"
#include "simbase/table.hpp"
#include "simbase/trace.hpp"
#include "simbase/units.hpp"

namespace han::bench {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(const std::string& flag) const {
    for (const auto& a : args_) {
      if (a == flag) return true;
    }
    return false;
  }

  long get_long(const std::string& flag, long fallback) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == flag) return std::atol(args_[i + 1].c_str());
    }
    return fallback;
  }

  std::size_t get_bytes(const std::string& flag, std::size_t fallback) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == flag) {
        bool ok = false;
        const std::size_t v = sim::parse_bytes(args_[i + 1], &ok);
        if (ok) return v;
      }
    }
    return fallback;
  }

  std::string get_string(const std::string& flag,
                         const std::string& fallback) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == flag) return args_[i + 1];
    }
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

/// Cluster shape for a figure: the paper's scale under --full, a
/// minutes-not-hours default otherwise, both overridable.
struct Scale {
  int nodes;
  int ppn;
};

inline Scale pick_scale(const Args& args, Scale dflt, Scale full) {
  Scale s = args.has("--full") ? full : dflt;
  s.nodes = static_cast<int>(args.get_long("--nodes", s.nodes));
  s.ppn = static_cast<int>(args.get_long("--ppn", s.ppn));
  return s;
}

/// x4 message ladder from `lo` to `hi` (IMB-style sweep, quarter-decade
/// sampling keeps bench runtime manageable; shapes are unaffected).
inline std::vector<std::size_t> ladder4(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> out;
  for (std::size_t s = lo; s <= hi; s *= 4) out.push_back(s);
  return out;
}

inline void print_header(const char* figure, const std::string& detail) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", figure, detail.c_str());
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

inline double speedup(double baseline, double value) {
  return value > 0.0 ? baseline / value : 0.0;
}

/// The shared observability hookup of every bench/app binary:
///
///   --metrics <base>   write `<base>[suffix].json` + `.csv` run reports
///   --trace <base>     write `<base>[suffix].trace.json` Perfetto traces
///
/// Usage: construct from Args, `attach()` each world right after creating
/// it, `emit()` when that world's workload is done (pass a suffix when one
/// binary runs several worlds). Both flags are independent; without either
/// the helper is inert.
class Obs {
 public:
  Obs(const Args& args, std::string binary)
      : binary_(std::move(binary)),
        metrics_base_(args.get_string("--metrics", "")),
        trace_base_(args.get_string("--trace", "")) {}

  bool metrics_enabled() const { return !metrics_base_.empty(); }
  bool trace_enabled() const { return !trace_base_.empty(); }

  /// Wire a world (and its collective runtime, when the bench has one)
  /// into this binary's report/trace outputs.
  void attach(mpi::SimWorld& world, coll::CollRuntime* rt = nullptr) {
    world.metrics().set_meta("binary", binary_);
    if (trace_enabled()) {
      world.set_tracer(&tracer_);
      if (rt != nullptr) rt->set_tracer(&tracer_);
    }
  }

  /// Write the attached world's report(s). Clears the trace buffer so a
  /// following attach/emit pair starts fresh.
  void emit(mpi::SimWorld& world, const std::string& suffix = "") {
    if (metrics_enabled()) {
      const std::string base = metrics_base_ + suffix;
      if (obs::write_report(world.metrics(), world.now(), base)) {
        std::printf("metrics: %s.json %s.csv\n", base.c_str(), base.c_str());
      }
    }
    if (trace_enabled()) {
      const std::string path = trace_base_ + suffix + ".trace.json";
      if (tracer_.save(path)) {
        std::printf("trace: %s (%zu spans, %zu counter samples)\n",
                    path.c_str(), tracer_.size(), tracer_.counter_count());
      }
      tracer_.clear();
    }
  }

 private:
  std::string binary_;
  std::string metrics_base_;
  std::string trace_base_;
  sim::Tracer tracer_;
};

}  // namespace han::bench

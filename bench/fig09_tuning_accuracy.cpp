// Fig. 9 reproduction: accuracy of the tuning strategies. For each message
// size: the best / median / average over all configurations (exhaustive
// ground truth), plus the *measured* performance of the configuration each
// strategy selects. The paper's claims: the task model's pick matches the
// exhaustive best in most cases; adding heuristics costs some accuracy;
// median/average are far above the best (tuning matters).
#include "autotune/search.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"
#include "simbase/stats.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 8}, {64, 12});
  const std::vector<std::size_t> sizes{256 << 10, 1 << 20, 4 << 20,
                                       16 << 20};

  bench::print_header(
      "Fig. 9 — accuracy of the tuning strategies",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn));
  bench::Obs obs(args, "fig09_tuning_accuracy");

  for (coll::CollKind kind :
       {coll::CollKind::Bcast, coll::CollKind::Allreduce}) {
    bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
    obs.attach(hw.world, &hw.rt);
    tune::Searcher s(hw.world, hw.han, hw.world.world_comm());
    s.prepare(kind, false);

    sim::Table t({"message", "best us", "median us", "average us",
                  "exh+heur us", "task model us", "task+heur us"});
    for (std::size_t m : sizes) {
      const tune::SearchResult truth = s.exhaustive(kind, m, false);
      std::vector<double> all;
      for (const auto& e : truth.all) all.push_back(e.time);

      auto measured_pick = [&](const tune::SearchResult& r) {
        return r.best ? s.measure_collective(kind, m, r.best->cfg) : 0.0;
      };
      const double heur_pick =
          measured_pick(s.exhaustive(kind, m, true));
      const double model_pick = measured_pick(s.estimate(kind, m, false));
      const double combo_pick = measured_pick(s.estimate(kind, m, true));

      t.begin_row()
          .cell(sim::format_bytes(m))
          .cell(truth.best->time * 1e6)
          .cell(sim::median(all) * 1e6)
          .cell(sim::mean(all) * 1e6)
          .cell(heur_pick * 1e6)
          .cell(model_pick * 1e6)
          .cell(combo_pick * 1e6);
      std::printf("  done: %s %s\n", coll::coll_kind_name(kind),
                  sim::format_bytes(m).c_str());
      std::fflush(stdout);
    }
    t.print(std::string("MPI_") + coll::coll_kind_name(kind) +
            " time-to-completion by tuning method");
    obs.emit(hw.world, std::string(".") + coll::coll_kind_name(kind));
  }
  std::printf(
      "\nExpected: task-model column tracks the exhaustive best; "
      "median/average far above it; heuristics slightly worse.\n");
  return 0;
}

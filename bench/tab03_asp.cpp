// Table III reproduction: ASP (parallel Floyd–Warshall) on the
// Stampede2-like machine. Per MPI stack: total time, communication time,
// communication ratio, and HAN's overall speedup.
//
// Paper row to match in shape: HAN cuts the communication ratio to ~46%
// from 50/69/82% (Intel / MVAPICH2 / Open MPI), for overall speedups of
// 1.08x / 1.8x / 2.43x.
//
// Substitution (DESIGN.md): the paper runs the first 1536 iterations of a
// "1M matrix"; we run a reduced iteration count with rotating roots and a
// matrix size placing HAN's communication share near the paper's ~46%,
// since only relative times across stacks carry information.
// Every stack owns its own simulated world, so --jobs N runs the stacks
// concurrently; prints, reports, and table rows are emitted after the
// join in input order, so output is byte-identical for every N. Tracing
// shares one buffer across stacks and stays serial.
#include <memory>

#include "apps/asp.hpp"
#include "bench_util.hpp"
#include "parallel/pool.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 12}, {32, 48});
  const int jobs = static_cast<int>(args.get_long("--jobs", 1));
  apps::AspOptions opt;
  // The paper's "1M matrix": 4MB row broadcasts, where HAN's pipelining
  // shines. The per-iteration compute default places HAN's communication
  // share near Table III's ~46%.
  opt.matrix_n = static_cast<int>(args.get_long("--n", 1 << 20));
  opt.iterations =
      static_cast<int>(args.get_long("--iters", args.has("--full") ? 96 : 32));

  bench::print_header(
      "Table III — ASP on Stampede2 (opath profile)",
      "nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " N=" +
          std::to_string(opt.matrix_n) + " iterations=" +
          std::to_string(opt.iterations) + " (row bcast = " +
          sim::format_bytes(static_cast<std::size_t>(opt.matrix_n) * 4) +
          ")");

  struct Row {
    std::string stack;
    std::unique_ptr<vendor::MpiStack> impl;  // kept alive for obs.emit
    apps::AspReport report;
  };
  bench::Obs obs(args, "tab03_asp");
  static const char* kNames[4] = {"ompi", "intel", "mvapich", "han"};
  auto run_stack = [&](int i) {
    Row row;
    row.stack = kNames[i];
    row.impl = vendor::make_stack(
        kNames[i], machine::make_opath(scale.nodes, scale.ppn));
    obs.attach(row.impl->world(), &row.impl->runtime());
    if (row.stack == "han") {
      auto* hs = static_cast<vendor::HanStack*>(row.impl.get());
      tune::TunerOptions topt;
      topt.heuristics = true;
      topt.kinds = {coll::CollKind::Bcast};
      topt.message_sizes = {static_cast<std::size_t>(opt.matrix_n) * 4};
      hs->autotune(topt);
    }
    row.report = apps::run_asp(*row.impl, opt);
    return row;
  };
  std::vector<Row> rows;
  if (obs.trace_enabled()) {
    // The shared trace buffer needs each stack's emit right after its run.
    for (int i = 0; i < 4; ++i) {
      rows.push_back(run_stack(i));
      std::printf("  measured stack: %s\n", rows.back().stack.c_str());
      std::fflush(stdout);
      obs.emit(rows.back().impl->world(), "." + rows.back().stack);
    }
  } else {
    rows = par::parallel_map(jobs, 4, run_stack);
    for (const Row& row : rows) {
      std::printf("  measured stack: %s\n", row.stack.c_str());
      std::fflush(stdout);
      obs.emit(row.impl->world(), "." + row.stack);
    }
  }

  const double han_total = rows.back().report.total_sec;
  sim::Table t({"stack", "total (sim s)", "comm (sim s)", "comm ratio %",
                "HAN speedup"});
  for (const Row& row : rows) {
    t.begin_row()
        .cell(row.stack)
        .cell(row.report.total_sec, 4)
        .cell(row.report.comm_sec, 4)
        .cell(row.report.comm_ratio * 100.0, 2)
        .cell(bench::speedup(row.report.total_sec, han_total), 2);
  }
  t.print("ASP results (slowest rank's accounting)");
  return 0;
}

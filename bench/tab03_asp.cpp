// Table III reproduction: ASP (parallel Floyd–Warshall) on the
// Stampede2-like machine. Per MPI stack: total time, communication time,
// communication ratio, and HAN's overall speedup.
//
// Paper row to match in shape: HAN cuts the communication ratio to ~46%
// from 50/69/82% (Intel / MVAPICH2 / Open MPI), for overall speedups of
// 1.08x / 1.8x / 2.43x.
//
// Substitution (DESIGN.md): the paper runs the first 1536 iterations of a
// "1M matrix"; we run a reduced iteration count with rotating roots and a
// matrix size placing HAN's communication share near the paper's ~46%,
// since only relative times across stacks carry information.
#include "apps/asp.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 12}, {32, 48});
  apps::AspOptions opt;
  // The paper's "1M matrix": 4MB row broadcasts, where HAN's pipelining
  // shines. The per-iteration compute default places HAN's communication
  // share near Table III's ~46%.
  opt.matrix_n = static_cast<int>(args.get_long("--n", 1 << 20));
  opt.iterations =
      static_cast<int>(args.get_long("--iters", args.has("--full") ? 96 : 32));

  bench::print_header(
      "Table III — ASP on Stampede2 (opath profile)",
      "nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " N=" +
          std::to_string(opt.matrix_n) + " iterations=" +
          std::to_string(opt.iterations) + " (row bcast = " +
          sim::format_bytes(static_cast<std::size_t>(opt.matrix_n) * 4) +
          ")");

  struct Row {
    std::string stack;
    apps::AspReport report;
  };
  std::vector<Row> rows;
  bench::Obs obs(args, "tab03_asp");
  for (const char* name : {"ompi", "intel", "mvapich", "han"}) {
    auto stack = vendor::make_stack(name, machine::make_opath(scale.nodes,
                                                              scale.ppn));
    obs.attach(stack->world(), &stack->runtime());
    if (std::string(name) == "han") {
      auto* hs = static_cast<vendor::HanStack*>(stack.get());
      tune::TunerOptions topt;
      topt.heuristics = true;
      topt.kinds = {coll::CollKind::Bcast};
      topt.message_sizes = {static_cast<std::size_t>(opt.matrix_n) * 4};
      hs->autotune(topt);
    }
    rows.push_back({name, apps::run_asp(*stack, opt)});
    std::printf("  measured stack: %s\n", name);
    std::fflush(stdout);
    obs.emit(stack->world(), std::string(".") + name);
  }

  const double han_total = rows.back().report.total_sec;
  sim::Table t({"stack", "total (sim s)", "comm (sim s)", "comm ratio %",
                "HAN speedup"});
  for (const Row& row : rows) {
    t.begin_row()
        .cell(row.stack)
        .cell(row.report.total_sec, 4)
        .cell(row.report.comm_sec, 4)
        .cell(row.report.comm_ratio * 100.0, 2)
        .cell(bench::speedup(row.report.total_sec, han_total), 2);
  }
  t.print("ASP results (slowest rank's accounting)");
  return 0;
}

// Ablation: ring vs tree inter-node reduce-scatter — the latency/bandwidth
// crossover that justifies autotuning the imod choice. The trees finish in
// log(nodes) rounds but move ~2m bytes through the leaders (reduce to
// up-root, then scatter); the ring takes nodes-1 serial steps but moves
// only ~m and keeps every NIC busy. Small messages are latency-bound (tree
// wins), large ones bandwidth-bound (ring wins); the tuned table should
// pick the winner on each side of the crossover.
#include "autotune/search.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {8, 4}, {32, 8});
  const std::size_t max_bytes =
      args.get_bytes("--max-bytes", args.has("--full") ? 64u << 20 : 32u << 20);

  bench::print_header(
      "Ablation — ring vs tree inter reduce-scatter crossover",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "abl_ring_crossover");
  obs.attach(hw.world, &hw.rt);
  tune::Searcher searcher(hw.world, hw.han, hw.world.world_comm());

  auto cfg_with = [](const char* imod, coll::Algorithm alg,
                     std::size_t iseg) {
    core::HanConfig c;
    c.fs = 512 << 10;
    c.imod = imod;
    c.smod = "sm";
    c.ibalg = alg;
    c.iralg = alg;
    c.ibs = iseg;
    c.irs = iseg;
    return c;
  };
  const core::HanConfig ring =
      cfg_with("ring", coll::Algorithm::Ring, 0);
  const core::HanConfig libnbc =
      cfg_with("libnbc", coll::Algorithm::Binomial, 0);
  const core::HanConfig adapt =
      cfg_with("adapt", coll::Algorithm::Binary, 64 << 10);

  sim::Table t({"bytes", "ring us", "libnbc us", "adapt us", "ring speedup",
                "winner"});
  std::size_t crossover = 0;
  for (std::size_t msg : bench::ladder4(256, max_bytes)) {
    const double t_ring = searcher.measure_collective(
        coll::CollKind::ReduceScatter, msg, ring);
    const double t_nbc = searcher.measure_collective(
        coll::CollKind::ReduceScatter, msg, libnbc);
    const double t_adp = searcher.measure_collective(
        coll::CollKind::ReduceScatter, msg, adapt);
    const double t_tree = std::min(t_nbc, t_adp);
    if (crossover == 0 && t_ring < t_tree) crossover = msg;
    t.begin_row()
        .cell(sim::format_bytes(msg))
        .cell(t_ring * 1e6)
        .cell(t_nbc * 1e6)
        .cell(t_adp * 1e6)
        .cell(bench::speedup(t_tree, t_ring), 2)
        .cell(t_ring < t_tree ? "ring" : "tree");
  }
  t.print("ring crossover ablation");
  if (crossover != 0) {
    std::printf("\nFirst ring win at %s; trees hold below (latency-bound"
                " regime).\n",
                sim::format_bytes(crossover).c_str());
  } else {
    std::printf("\nNo ring win in the swept range — raise --max-bytes.\n");
  }
  obs.emit(hw.world);
  return 0;
}

// Ablation (extension): synthesized vs hand-written schedules. HAN's
// builders encode one shape per collective; han::synth searches the
// bounded grammar around those shapes (docs/SYNTHESIS.md) with a verify
// gate in front of execution. This bench reports, per (collective, size)
// case, the best hand-written Table II baseline against the synthesizer's
// verified winner — the acceptance bar is ratio <= 1.0 on at least one
// point, i.e. synthesis never has to lose to the hand-written shapes and
// sometimes finds a strictly better one (e.g. multi-leader striping).
#include <algorithm>

#include "bench_util.hpp"
#include "han/synth/synth.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {2, 4}, {4, 8});

  bench::print_header(
      "Ablation (extension) — verified schedule synthesis",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn));

  synth::SynthOptions opts;
  opts.nodes = scale.nodes;
  opts.ppn = scale.ppn;
  opts.sizes = {64 << 10, 1 << 20, 4 << 20};
  opts.seed = static_cast<std::uint64_t>(args.get_long("--seed", 1));
  const synth::SynthResult result = synth::run_synthesis(opts);

  sim::Table t({"case", "explored", "frontier", "baseline us", "synth us",
                "ratio", "winning schedule"});
  for (const synth::SynthCase& c : result.cases) {
    if (c.winner < 0 || c.baseline <= 0.0) {
      t.begin_row().cell(c.name).cell(c.explored).cell(c.frontier).cell(
          "-").cell("-").cell("-").cell("none verified");
      continue;
    }
    const synth::Candidate& w = c.finalists[c.winner];
    t.begin_row()
        .cell(c.name)
        .cell(c.explored)
        .cell(c.frontier)
        .cell(c.baseline * 1e6)
        .cell(w.time * 1e6)
        .cell(w.time / c.baseline, 3)
        .cell(w.cfg.sched);
  }
  t.print("synthesized winner vs best hand-written config (ratio <= 1 "
          "means synthesis matched or beat the builders)");
  std::printf(
      "\n%d findings among %d verified finalists; %d/%zu cases matched or "
      "beat the hand-written baseline. The canonical shape is always in "
      "the finalist pool, so a win is guaranteed whenever it verifies; "
      "strict improvements come from grammar corners the builders do not "
      "reach (leader striping, eager ib emission).\n",
      result.finalist_findings(),
      [&] {
        int n = 0;
        for (const synth::SynthCase& c : result.cases) {
          n += static_cast<int>(c.finalists.size());
        }
        return n;
      }(),
      result.wins(), result.cases.size());
  return 0;
}

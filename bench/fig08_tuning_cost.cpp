// Fig. 8 reproduction: time of total searches for MPI_Bcast and
// MPI_Allreduce under the four strategies — exhaustive, exhaustive with
// heuristics, HAN's task-based model, and the combined approach. The
// tuning cost is the *simulated* time spent benchmarking (the quantity a
// machine owner pays when installing the MPI).
//
// Paper outcome to match in shape: heuristics ≈ 26.8% of exhaustive,
// task-based ≈ 23%, combined ≈ 4.3%.
//
// Part two extends the figure to the tuning service (docs/
// TUNING_SERVICE.md): cold-tune a fleet of machine shapes into a TuneDb,
// perturb one machine's P2P efficiency curve, and warm-start re-tune the
// fleet — only the perturbed machine re-benchmarks, so the fleet-wide
// tuning cost drops by roughly the fleet size. --bench-json <path> records
// the comparison (the committed BENCH_tunedb.json).
//
// Every strategy cell and every fleet tuning pass owns its world, so
// --jobs N runs them concurrently with byte-identical output for any N.
#include <memory>

#include "autotune/search.hpp"
#include "autotune/tunedb.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"
#include "obs/report.hpp"
#include "parallel/pool.hpp"

namespace {

using namespace han;

struct FleetShape {
  const char* family;  // "aries" | "opath"
  int nodes;
  int ppn;
};

machine::MachineProfile fleet_profile(const FleetShape& shape) {
  return std::string(shape.family) == "aries"
             ? machine::make_aries(shape.nodes, shape.ppn)
             : machine::make_opath(shape.nodes, shape.ppn);
}

/// One fleet tuning pass (cold or warm): every machine against the shared
/// DB. The expensive per-machine tuning runs as parallel jobs; the DB is
/// only read/written on the caller thread, in fleet order.
struct FleetPass {
  double cost = 0.0;
  int reused = 0;
  int retuned = 0;
  std::vector<std::string> retuned_machines;
};

FleetPass fleet_tune(tune::TuneDb& db, const std::vector<FleetShape>& fleet,
                     const machine::MachineProfile* perturbed,
                     std::size_t perturbed_index,
                     const tune::TunerOptions& topts) {
  // Machines run in fleet order against the shared DB; the expensive part
  // — the per-kind tuning benchmarks inside warm_tune — fans out over
  // topts.jobs threads per machine.
  FleetPass pass;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    machine::MachineProfile profile =
        perturbed != nullptr && i == perturbed_index
            ? *perturbed
            : fleet_profile(fleet[i]);
    bench::HanWorld hw(std::move(profile));
    tune::Tuner tuner(hw.world, hw.han, hw.world.world_comm());
    const tune::WarmStartReport rep = tune::warm_tune(db, tuner, topts);
    pass.cost += rep.tuning_cost;
    pass.reused += rep.reused;
    pass.retuned += rep.retuned;
    if (rep.retuned > 0) {
      pass.retuned_machines.push_back(
          tune::signature_of(hw.world.profile()).key());
    }
  }
  return pass;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 8}, {64, 12});
  const int jobs =
      static_cast<int>(args.get_long("--jobs", 1));
  const std::vector<std::size_t> sizes{256 << 10, 1 << 20, 4 << 20,
                                       16 << 20};

  bench::print_header(
      "Fig. 8 — time of total searches (tuning cost)",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) +
          " message grid=256K,1M,4M,16M");

  sim::Table t({"collective", "strategy", "tuning time (sim s)",
                "% of exhaustive", "configs evaluated"});
  const std::string metrics_base = args.get_string("--metrics", "");

  // ---- Part one: the four search strategies, one independent cell per
  // (collective, strategy). Cells run concurrently; rows, prints, and
  // metrics reports are emitted after the join in input order, so output
  // is byte-identical for every --jobs value.
  struct Cell {
    coll::CollKind kind;
    int strategy;
    std::unique_ptr<bench::HanWorld> hw;
    double cost = 0.0;
    int evaluations = 0;
  };
  std::vector<Cell> cells;
  for (coll::CollKind kind :
       {coll::CollKind::Bcast, coll::CollKind::Allreduce}) {
    for (int strategy = 0; strategy < 4; ++strategy) {
      Cell c;
      c.kind = kind;
      c.strategy = strategy;
      cells.push_back(std::move(c));
    }
  }
  std::vector<Cell> done = par::parallel_map(
      jobs, static_cast<int>(cells.size()), [&](int i) {
        Cell c = std::move(cells[static_cast<std::size_t>(i)]);
        const bool task_based = c.strategy >= 2;
        const bool heuristics = c.strategy == 1 || c.strategy == 3;
        c.hw = std::make_unique<bench::HanWorld>(
            machine::make_aries(scale.nodes, scale.ppn));
        c.hw->world.metrics().set_meta("binary", "fig08_tuning_cost");
        tune::Searcher s(c.hw->world, c.hw->han, c.hw->world.world_comm());
        if (task_based) {
          s.prepare(c.kind, heuristics);
          for (std::size_t m : sizes) {
            c.evaluations += s.estimate(c.kind, m, heuristics).evaluations;
          }
        } else {
          for (std::size_t m : sizes) {
            c.evaluations += s.exhaustive(c.kind, m, heuristics).evaluations;
          }
        }
        c.cost = s.tuning_cost();
        return c;
      });

  static const char* kNames[] = {"exhaustive", "exhaustive+heuristics",
                                 "task model (HAN)",
                                 "task model+heuristics"};
  double exhaustive_cost = 0.0;
  for (const Cell& c : done) {
    if (c.strategy == 0) exhaustive_cost = c.cost;
    t.begin_row()
        .cell(coll::coll_kind_name(c.kind))
        .cell(kNames[c.strategy])
        .cell(c.cost, 4)
        .cell(100.0 * c.cost / exhaustive_cost, 1)
        .cell(c.evaluations);
    std::printf("  done: %s / %s\n", coll::coll_kind_name(c.kind),
                kNames[c.strategy]);
    std::fflush(stdout);
    if (!metrics_base.empty()) {
      const std::string base = metrics_base + "." +
                               coll::coll_kind_name(c.kind) + ".s" +
                               std::to_string(c.strategy);
      if (obs::write_report(c.hw->world.metrics(), c.hw->world.now(), base)) {
        std::printf("metrics: %s.json %s.csv\n", base.c_str(), base.c_str());
      }
    }
  }
  t.print("search cost comparison");

  // ---- Part two: warm-start tuning across a fleet (docs/
  // TUNING_SERVICE.md). Cold-tune every shape, then perturb one machine's
  // large-message efficiency and re-tune the fleet warm: only the
  // perturbed machine pays tuning cost again.
  const std::vector<FleetShape> fleet{
      {"aries", 4, 2}, {"aries", 4, 4}, {"aries", 8, 2}, {"aries", 8, 4},
      {"aries", 16, 2}, {"opath", 4, 4}, {"opath", 8, 2}, {"opath", 8, 4},
  };
  const std::size_t kPerturbed = 2;  // aries 8x2
  tune::TunerOptions topts;
  topts.jobs = jobs;

  tune::TuneDb db;
  const FleetPass cold = fleet_tune(db, fleet, nullptr, 0, topts);
  const FleetPass noop = fleet_tune(db, fleet, nullptr, 0, topts);

  machine::MachineProfile perturbed = fleet_profile(fleet[kPerturbed]);
  machine::scale_net_efficiency(perturbed, /*factor=*/0.85,
                                /*min_bytes=*/2 << 20);
  const FleetPass warm = fleet_tune(db, fleet, &perturbed, kPerturbed, topts);

  sim::Table ft({"pass", "tuning time (sim s)", "buckets reused",
                 "buckets re-tuned", "speedup vs cold"});
  ft.begin_row().cell("cold fleet tune").cell(cold.cost, 4).cell(cold.reused)
      .cell(cold.retuned).cell(1.0, 2);
  ft.begin_row().cell("warm re-tune (no change)").cell(noop.cost, 4)
      .cell(noop.reused).cell(noop.retuned)
      .cell(noop.cost > 0.0 ? cold.cost / noop.cost : 0.0, 2);
  ft.begin_row().cell("warm re-tune (1 perturbed)").cell(warm.cost, 4)
      .cell(warm.reused).cell(warm.retuned)
      .cell(warm.cost > 0.0 ? cold.cost / warm.cost : 0.0, 2);
  ft.print("tuning service: fleet of " + std::to_string(fleet.size()) +
           " machines, perturb " +
           tune::signature_of(perturbed).key());

  const double speedup = warm.cost > 0.0 ? cold.cost / warm.cost : 0.0;
  const std::string bench_json = args.get_string("--bench-json", "");
  if (!bench_json.empty()) {
    std::string j = "{\n";
    j += "  \"description\": \"tuning service: cold fleet tune vs "
         "warm-start re-tune after perturbing one machine "
         "(docs/TUNING_SERVICE.md)\",\n";
    j += "  \"bench_binary\": \"build/bench/fig08_tuning_cost\",\n";
    j += "  \"fleet\": [";
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (i > 0) j += ", ";
      j += "\"" + tune::signature_of(fleet_profile(fleet[i])).key() + "\"";
    }
    j += "],\n";
    j += "  \"perturbed\": \"" + tune::signature_of(perturbed).key() +
         "\",\n";
    j += "  \"perturbation\": \"net_efficiency x0.85 at >= 2M\",\n";
    j += "  \"cold_cost_seconds\": " + fmt_double(cold.cost) + ",\n";
    j += "  \"warm_noop_cost_seconds\": " + fmt_double(noop.cost) + ",\n";
    j += "  \"warm_noop_retuned\": " + std::to_string(noop.retuned) + ",\n";
    j += "  \"warm_cost_seconds\": " + fmt_double(warm.cost) + ",\n";
    j += "  \"warm_reused\": " + std::to_string(warm.reused) + ",\n";
    j += "  \"warm_retuned\": " + std::to_string(warm.retuned) + ",\n";
    j += "  \"speedup_cold_over_warm\": " + fmt_double(speedup) + "\n";
    j += "}\n";
    std::FILE* f = std::fopen(bench_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fig08: cannot write %s\n", bench_json.c_str());
      return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("bench json: %s\n", bench_json.c_str());
  }
  std::printf("fleet warm-start speedup: %.2fx (cold %.4f s -> warm %.4f s, "
              "no-change re-tune cost %.4f s)\n",
              speedup, cold.cost, warm.cost, noop.cost);
  return 0;
}

// Fig. 8 reproduction: time of total searches for MPI_Bcast and
// MPI_Allreduce under the four strategies — exhaustive, exhaustive with
// heuristics, HAN's task-based model, and the combined approach. The
// tuning cost is the *simulated* time spent benchmarking (the quantity a
// machine owner pays when installing the MPI).
//
// Paper outcome to match in shape: heuristics ≈ 26.8% of exhaustive,
// task-based ≈ 23%, combined ≈ 4.3%.
#include "autotune/search.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 8}, {64, 12});
  const std::vector<std::size_t> sizes{256 << 10, 1 << 20, 4 << 20,
                                       16 << 20};

  bench::print_header(
      "Fig. 8 — time of total searches (tuning cost)",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) +
          " message grid=256K,1M,4M,16M");

  sim::Table t({"collective", "strategy", "tuning time (sim s)",
                "% of exhaustive", "configs evaluated"});
  bench::Obs obs(args, "fig08_tuning_cost");

  for (coll::CollKind kind :
       {coll::CollKind::Bcast, coll::CollKind::Allreduce}) {
    double exhaustive_cost = 0.0;
    // Fresh world per strategy so clocks/caches don't leak across bars.
    for (int strategy = 0; strategy < 4; ++strategy) {
      const bool task_based = strategy >= 2;
      const bool heuristics = strategy == 1 || strategy == 3;
      bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
      obs.attach(hw.world, &hw.rt);
      tune::Searcher s(hw.world, hw.han, hw.world.world_comm());

      int evaluations = 0;
      if (task_based) {
        s.prepare(kind, heuristics);
        for (std::size_t m : sizes) {
          evaluations += s.estimate(kind, m, heuristics).evaluations;
        }
      } else {
        for (std::size_t m : sizes) {
          evaluations += s.exhaustive(kind, m, heuristics).evaluations;
        }
      }
      const double cost = s.tuning_cost();
      if (strategy == 0) exhaustive_cost = cost;

      static const char* kNames[] = {"exhaustive", "exhaustive+heuristics",
                                     "task model (HAN)",
                                     "task model+heuristics"};
      t.begin_row()
          .cell(coll::coll_kind_name(kind))
          .cell(kNames[strategy])
          .cell(cost, 4)
          .cell(100.0 * cost / exhaustive_cost, 1)
          .cell(evaluations);
      std::printf("  done: %s / %s\n", coll::coll_kind_name(kind),
                  kNames[strategy]);
      std::fflush(stdout);
      obs.emit(hw.world, std::string(".") + coll::coll_kind_name(kind) +
                             ".s" + std::to_string(strategy));
    }
  }
  t.print("search cost comparison");
  return 0;
}

// Ablation: what the paper's §III-A2 argues — neither the perfect-overlap
// model (sbib = max(ib, sb)) nor the no-overlap model (sbib = ib + sb)
// predicts MPI_Bcast correctly; HAN's benchmarked-sbib model does.
//
// For each configuration we build three eq.-3 estimates that differ only
// in the sbib(s) term and compare them against the measured 4MB bcast.
#include "autotune/search.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 8}, {64, 12});
  const std::size_t msg = args.get_bytes("--bytes", 4 << 20);
  const std::size_t seg = args.get_bytes("--segment", 256 << 10);

  bench::print_header(
      "Ablation — overlap models: benchmarked sbib vs max(ib,sb) vs ib+sb",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " message=" +
          sim::format_bytes(msg) + " segment=" + sim::format_bytes(seg));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "abl_overlap_models");
  obs.attach(hw.world, &hw.rt);
  tune::TaskBench tb(hw.world, hw.han, hw.world.world_comm());
  tune::Searcher searcher(hw.world, hw.han, hw.world.world_comm());

  sim::Table t({"config", "measured us", "HAN model us", "err %",
                "perfect-overlap us", "err %", "no-overlap us", "err %"});

  for (auto cfg : bench::fig_configs(seg)) {
    cfg.fs = seg;
    const int u = static_cast<int>((msg + seg - 1) / seg);

    const tune::PerLeader ib = tb.bench_ib(cfg, seg);
    const tune::PerLeader sb = tb.bench_sb(cfg, seg);
    const tune::PipelineTrace trace = tb.bench_sbib_pipeline(cfg, seg, 8, ib);

    tune::BcastTaskCosts han_costs{ib, sb, trace.stabilized()};
    tune::BcastTaskCosts perfect = han_costs;
    tune::BcastTaskCosts serial = han_costs;
    for (std::size_t l = 0; l < ib.t.size(); ++l) {
      perfect.sbib_stable.t[l] = std::max(ib.t[l], sb.t[l]);
      serial.sbib_stable.t[l] = ib.t[l] + sb.t[l];
    }

    const double measured =
        searcher.measure_collective(coll::CollKind::Bcast, msg, cfg);
    const double est_han = tune::bcast_model_cost(han_costs, u);
    const double est_perfect = tune::bcast_model_cost(perfect, u);
    const double est_serial = tune::bcast_model_cost(serial, u);
    auto err = [&](double est) { return 100.0 * (est - measured) / measured; };

    t.begin_row()
        .cell(cfg.imod + "/" + coll::algorithm_name(cfg.ibalg))
        .cell(measured * 1e6)
        .cell(est_han * 1e6)
        .cell(err(est_han), 1)
        .cell(est_perfect * 1e6)
        .cell(err(est_perfect), 1)
        .cell(est_serial * 1e6)
        .cell(err(est_serial), 1);
  }
  t.print("estimate error by overlap model");
  std::printf(
      "\nExpected: HAN column's |err| smallest; perfect-overlap "
      "underestimates, no-overlap overestimates.\n");
  obs.emit(hw.world);
  return 0;
}

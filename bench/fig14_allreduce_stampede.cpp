// Fig. 14 reproduction: MPI_Allreduce on the Stampede2-like machine.
//
// Paper shapes: HAN fastest between 4MB and 64MB; MVAPICH2 (SALaR-style
// multi-level allreduce) catches up at the top of the range, with both
// significantly ahead of Intel MPI and default Open MPI; on small messages
// the vendors lead (HAN's scalar SM/Libnbc reductions).
#include "imb_figure.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 24}, {32, 48});
  const std::size_t max_bytes =
      args.get_bytes("--max-bytes", args.has("--full") ? 128 << 20
                                                       : 32 << 20);

  bench::print_header(
      "Fig. 14 — MPI_Allreduce on Stampede2 (opath profile)",
      "nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " (" +
          std::to_string(scale.nodes * scale.ppn) + " procs), up to " +
          sim::format_bytes(max_bytes));

  bench::ImbFigureOptions opt;
  opt.profile = machine::make_opath(scale.nodes, scale.ppn);
  opt.kind = coll::CollKind::Allreduce;
  opt.stacks = {"ompi", "intel", "mvapich", "han"};
  opt.sizes = bench::ladder4(4, max_bytes);
  opt.jobs = static_cast<int>(args.get_long("--jobs", 1));
  bench::Obs obs(args, "fig14_allreduce_stampede");
  opt.obs = &obs;
  bench::run_imb_figure(opt);
  return 0;
}

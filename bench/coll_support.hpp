// Bench-side helpers: a SimWorld wired with the collective machinery and
// the HAN module, and the configuration lists the task/model figures
// sweep.
#pragma once

#include <vector>

#include "han/han.hpp"

namespace han::bench {

/// World + runtime + submodules + HAN, timing-only mode.
struct HanWorld {
  explicit HanWorld(machine::MachineProfile profile)
      : world(std::move(profile)), rt(world), mods(world, rt),
        han(world, rt, mods) {}

  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
  core::HanModule han;
};

/// The submodule/algorithm combinations Figs. 2-4 sweep: Libnbc (one
/// algorithm) and ADAPT's chain/binary/binomial, over SM intra.
inline std::vector<core::HanConfig> fig_configs(std::size_t seg) {
  std::vector<core::HanConfig> out;
  {
    core::HanConfig c;
    c.fs = seg;
    c.imod = "libnbc";
    c.smod = "sm";
    c.ibalg = coll::Algorithm::Binomial;
    c.iralg = coll::Algorithm::Binomial;
    out.push_back(c);
  }
  for (coll::Algorithm alg : {coll::Algorithm::Chain, coll::Algorithm::Binary,
                              coll::Algorithm::Binomial}) {
    core::HanConfig c;
    c.fs = seg;
    c.imod = "adapt";
    c.smod = "sm";
    c.ibalg = alg;
    c.iralg = alg;
    c.ibs = 16 << 10;
    c.irs = 16 << 10;
    out.push_back(c);
  }
  return out;
}

}  // namespace han::bench

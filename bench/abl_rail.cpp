// Ablation (extension): multi-rail striping — CommBench's rail-aligned vs
// fan observation, HiCCL's striping primitive (docs/FABRIC.md). On a
// 4-NIC machine the LeaderAffine default pins an unstriped single-leader
// plan's inter-node traffic to rail 0 (the "fan" baseline, one NIC of
// four); a striped plan (HanConfig::sf > 1) splits every inter send into
// per-rail slices and sustains the aggregate. Both sides run the same
// generic task-graph builder — only `sf` differs.
//
// Two parts:
//  1. forced ablation: best single-rail (sf=1) vs best striped config
//     over the same fragment-size grid, per message size;
//  2. unforced tuner: the ordinary autotuner over
//     SearchSpace::for_profile — striping must enter the winning configs
//     on its own at large messages.
//
// --bench-json <path> records both (the committed BENCH_rail.json);
// --check exits non-zero unless striping wins >= 2x at the largest
// message AND the tuner picks sf>1 unforced (the CI rail-smoke gate).
#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

namespace han::bench {

double timed(HanWorld& hw, std::size_t bytes, const core::HanConfig& cfg) {
  auto sync = std::make_shared<mpi::SyncDomain>(hw.world.engine(),
                                                hw.world.world_size());
  auto worst = std::make_shared<double>(0.0);
  hw.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](HanWorld& hw2, std::shared_ptr<mpi::SyncDomain> sync2,
              std::shared_ptr<double> worst2, std::size_t bytes2,
              core::HanConfig cfg2, int me) -> sim::CoTask {
      co_await *sync2->arrive();
      const double t0 = hw2.world.now();
      mpi::Request r = hw2.han.ibcast_cfg(hw2.world.world_comm(), me, 0,
                                          mpi::BufView::timing_only(bytes2),
                                          mpi::Datatype::Byte, cfg2);
      co_await *r;
      *worst2 = std::max(*worst2, hw2.world.now() - t0);
    }(hw, sync, worst, bytes, cfg, rank.world_rank);
  });
  return *worst;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace han::bench

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const std::string machine_name =
      args.get_string("--machine", "aries_rail4");
  machine::MachineProfile profile;
  bool found = false;
  for (const machine::StockMachine& sm : machine::stock_machines()) {
    if (machine_name == sm.name) {
      profile = sm.profile;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "abl_rail: unknown stock machine '%s'\n",
                 machine_name.c_str());
    return 1;
  }
  const int rails = profile.nics_per_node;

  bench::print_header(
      "Ablation (extension) — rail-striped vs forced single-rail HAN bcast "
      "on a multi-NIC machine",
      "machine=" + machine_name + " nodes=" + std::to_string(profile.nodes) +
          " ppn=" + std::to_string(profile.procs_per_node) +
          " rails=" + std::to_string(rails));

  // The fragment-size grid both sides pick their best from; the striped
  // side also picks its stripe factor from the rail-count divisors.
  const std::vector<std::size_t> fs_grid{1 << 20, 2 << 20, 4 << 20,
                                         16 << 20};
  std::vector<int> sf_grid;
  for (int d = 2; d <= rails; ++d) {
    if (rails % d == 0) sf_grid.push_back(d);
  }

  struct Best {
    double t = 1e300;
    core::HanConfig cfg;
  };
  auto base_cfg = [](std::size_t fs, int sf) {
    core::HanConfig c;
    c.fs = fs;
    c.imod = "adapt";
    c.smod = "sm";
    c.ibalg = coll::Algorithm::Chain;
    c.iralg = coll::Algorithm::Chain;
    c.sf = sf;
    return c;
  };

  struct Row {
    std::size_t bytes;
    Best single, striped;
  };
  std::vector<Row> rows;

  bench::Obs obs(args, "abl_rail");
  sim::Table t({"bytes", "single-rail us", "striped us", "stripe sf",
                "striped speedup"});
  for (std::size_t bytes : {1u << 20, 4u << 20, 16u << 20}) {
    Row row;
    row.bytes = bytes;
    for (std::size_t fs : fs_grid) {
      for (int sf : sf_grid) {
        bench::HanWorld hw(profile);
        const double ts = bench::timed(hw, bytes, base_cfg(fs, sf));
        if (ts < row.striped.t) row.striped = {ts, base_cfg(fs, sf)};
      }
      bench::HanWorld hw(profile);
      obs.attach(hw.world, &hw.rt);
      const double t1 = bench::timed(hw, bytes, base_cfg(fs, 1));
      if (t1 < row.single.t) row.single = {t1, base_cfg(fs, 1)};
      if (fs == fs_grid.back()) {
        obs.emit(hw.world, "." + std::to_string(bytes));
      }
    }
    rows.push_back(row);
    t.begin_row()
        .cell(sim::format_bytes(bytes))
        .cell(row.single.t * 1e6)
        .cell(row.striped.t * 1e6)
        .cell(row.striped.cfg.sf)
        .cell(bench::speedup(row.single.t, row.striped.t), 2);
  }
  t.print("rail-striping ablation (MPI_Bcast, best config per side)");
  std::printf(
      "\nExpected: striping wins once the message is bandwidth-bound — the "
      "single-rail side is stuck on one of %d NICs.\n",
      rails);

  // Part 2 — the unforced tuner. SearchSpace::for_profile crosses the
  // stripe axis in automatically on multi-rail profiles; large-message
  // winners must carry sf>1 without any forcing.
  bench::HanWorld tw(profile);
  tune::Tuner tuner(tw.world, tw.han, tw.world.world_comm(),
                    tune::SearchSpace::for_profile(profile));
  tune::TunerOptions topt;
  topt.message_sizes = {64 << 10, 1 << 20, 16 << 20};
  topt.kinds = {coll::CollKind::Bcast, coll::CollKind::Allreduce};
  const tune::TuneReport report = tuner.tune(topt);
  sim::Table tt({"kind", "bytes", "tuned config"});
  bool tuner_striped_16m = false;
  for (const auto& [key, cfg] : report.table.entries()) {
    tt.begin_row()
        .cell(coll::coll_kind_name(key.kind))
        .cell(sim::format_bytes(std::size_t{1} << key.log2_bytes))
        .cell(cfg.to_string());
    if (key.log2_bytes == 24 && cfg.sf > 1) tuner_striped_16m = true;
  }
  tt.print("autotuned configs (unforced; sf>1 = striping chosen)");

  const double top_speedup = rows.back().single.t / rows.back().striped.t;
  std::printf("\n16M striped speedup: %.2fx; tuner picked sf>1 at 16M: %s\n",
              top_speedup, tuner_striped_16m ? "yes" : "no");

  const std::string bench_json = args.get_string("--bench-json", "");
  if (!bench_json.empty()) {
    std::string j = "{\n";
    j += "  \"description\": \"rail-striped (sf>1) vs forced single-rail "
         "(sf=1) HAN bcast on a stock 4-NIC machine, plus the unforced "
         "autotuner's winners (docs/FABRIC.md)\",\n";
    j += "  \"bench_binary\": \"build/bench/abl_rail\",\n";
    j += "  \"machine\": \"" + machine_name + " " +
         std::to_string(profile.nodes) + "x" +
         std::to_string(profile.procs_per_node) +
         " rails=" + std::to_string(rails) + "\",\n";
    j += "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      j += "    {\"bytes\": " + std::to_string(r.bytes) +
           ", \"single_rail_seconds\": " + bench::fmt_double(r.single.t) +
           ", \"striped_seconds\": " + bench::fmt_double(r.striped.t) +
           ", \"striped_cfg\": \"" +
           bench::json_escape(r.striped.cfg.to_string()) +
           "\", \"speedup\": " +
           bench::fmt_double(r.single.t / r.striped.t) + "}" +
           (i + 1 < rows.size() ? ",\n" : "\n");
    }
    j += "  ],\n";
    j += "  \"largest_message_speedup\": " + bench::fmt_double(top_speedup) +
         ",\n";
    j += "  \"tuned\": [\n";
    const auto& entries = report.table.entries();
    std::size_t i = 0;
    for (const auto& [key, cfg] : entries) {
      j += std::string("    {\"kind\": \"") + coll::coll_kind_name(key.kind) +
           "\", \"bytes\": " +
           std::to_string(std::size_t{1} << key.log2_bytes) +
           ", \"sf\": " + std::to_string(cfg.sf) + ", \"cfg\": \"" +
           bench::json_escape(cfg.to_string()) + "\"}" +
           (++i < entries.size() ? ",\n" : "\n");
    }
    j += "  ],\n";
    j += "  \"tuner_picked_striping_at_16M\": ";
    j += tuner_striped_16m ? "true" : "false";
    j += "\n}\n";
    std::FILE* f = std::fopen(bench_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "abl_rail: cannot write %s\n", bench_json.c_str());
      return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("bench json: %s\n", bench_json.c_str());
  }

  if (args.has("--check")) {
    if (top_speedup < 2.0) {
      std::fprintf(stderr,
                   "abl_rail: FAIL striped speedup %.2fx < 2x at 16M\n",
                   top_speedup);
      return 1;
    }
    if (!tuner_striped_16m) {
      std::fprintf(stderr,
                   "abl_rail: FAIL tuner did not pick sf>1 at 16M\n");
      return 1;
    }
    std::printf("abl_rail: CHECK OK\n");
  }
  return 0;
}

// Ablation: HAN's segmentation/pipelining (paper §III: "an optimal design
// ... should maximize the communication overlap, especially for large
// messages"). Runs HAN bcast and allreduce with pipelining disabled
// (fs = message size → a single task chain) vs the default segmented
// configuration.
#include "autotune/search.hpp"
#include "bench_util.hpp"
#include "coll_support.hpp"

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 8}, {64, 12});

  bench::print_header(
      "Ablation — pipelining on/off (fs = 512KB vs fs = message size)",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn));

  bench::HanWorld hw(machine::make_aries(scale.nodes, scale.ppn));
  bench::Obs obs(args, "abl_pipeline");
  obs.attach(hw.world, &hw.rt);
  tune::Searcher searcher(hw.world, hw.han, hw.world.world_comm());

  sim::Table t({"collective", "bytes", "pipelined us", "single-segment us",
                "pipelining speedup"});
  for (coll::CollKind kind :
       {coll::CollKind::Bcast, coll::CollKind::Allreduce}) {
    for (std::size_t msg : {4u << 20, 16u << 20}) {
      core::HanConfig pipelined;
      pipelined.fs = 512 << 10;
      pipelined.imod = "adapt";
      pipelined.smod = "sm";
      pipelined.ibalg = coll::Algorithm::Chain;
      pipelined.iralg = coll::Algorithm::Chain;
      pipelined.ibs = 64 << 10;
      pipelined.irs = 64 << 10;
      core::HanConfig whole = pipelined;
      whole.fs = msg;
      whole.ibalg = coll::Algorithm::Binary;  // chain needs segments
      whole.iralg = coll::Algorithm::Binary;

      const double t_pipe = searcher.measure_collective(kind, msg, pipelined);
      const double t_whole = searcher.measure_collective(kind, msg, whole);
      t.begin_row()
          .cell(coll::coll_kind_name(kind))
          .cell(sim::format_bytes(msg))
          .cell(t_pipe * 1e6)
          .cell(t_whole * 1e6)
          .cell(bench::speedup(t_whole, t_pipe), 2);
    }
  }
  t.print("pipelining ablation");
  std::printf("\nExpected: speedup > 1 throughout, growing with size.\n");
  obs.emit(hw.world);
  return 0;
}

// Ablation (extension): two vs three hardware levels — the paper's future
// work ("explore approaches based on an increased number of hardware
// levels"). On a NUMA machine the flat 2-level HAN (lvl=2) treats each
// node as flat shared memory, dragging every far-socket reader across the
// inter-socket link; the derived 3-level ladder (lvl=0 on a NUMA profile:
// numa < node < cluster) crosses it once per segment. Both sides run the
// same generic task-graph builder — only the topology descriptor differs.
//
// --bench-json <path> records the comparison (the committed
// BENCH_numa.json).
#include <cstdio>

#include "bench_util.hpp"
#include "coll_support.hpp"

namespace han::bench {

double timed(HanWorld& hw, std::size_t bytes, const core::HanConfig& cfg) {
  auto sync = std::make_shared<mpi::SyncDomain>(hw.world.engine(),
                                                hw.world.world_size());
  auto worst = std::make_shared<double>(0.0);
  hw.world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](HanWorld& hw2, std::shared_ptr<mpi::SyncDomain> sync2,
              std::shared_ptr<double> worst2, std::size_t bytes2,
              core::HanConfig cfg2, int me) -> sim::CoTask {
      co_await *sync2->arrive();
      const double t0 = hw2.world.now();
      mpi::Request r = hw2.han.ibcast_cfg(hw2.world.world_comm(), me, 0,
                                          mpi::BufView::timing_only(bytes2),
                                          mpi::Datatype::Byte, cfg2);
      co_await *r;
      *worst2 = std::max(*worst2, hw2.world.now() - t0);
    }(hw, sync, worst, bytes, cfg, rank.world_rank);
  });
  return *worst;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace han::bench

int main(int argc, char** argv) {
  using namespace han;
  bench::Args args(argc, argv);
  const bench::Scale scale = bench::pick_scale(args, {16, 16}, {64, 32});
  const int domains = static_cast<int>(args.get_long("--numa", 2));

  bench::print_header(
      "Ablation (extension) — derived 3-level vs forced flat HAN bcast on "
      "NUMA nodes",
      "machine=aries nodes=" + std::to_string(scale.nodes) +
          " ppn=" + std::to_string(scale.ppn) + " numa=" +
          std::to_string(domains));

  core::HanConfig flat_cfg;
  flat_cfg.fs = 512 << 10;
  flat_cfg.imod = "adapt";
  flat_cfg.smod = "sm";
  flat_cfg.ibalg = coll::Algorithm::Chain;
  flat_cfg.iralg = coll::Algorithm::Chain;
  flat_cfg.ibs = 64 << 10;
  flat_cfg.lvl = 2;  // force the paper's flat node<cluster ladder
  core::HanConfig derived_cfg = flat_cfg;
  derived_cfg.lvl = 0;  // derive from the profile: numa<node<cluster

  struct Row {
    std::size_t bytes;
    double t2, t3;
  };
  std::vector<Row> rows;

  bench::Obs obs(args, "abl_numa");
  sim::Table t({"bytes", "flat 2-level us", "derived 3-level us",
                "3-level speedup"});
  for (std::size_t bytes : {1u << 20, 4u << 20, 16u << 20}) {
    bench::HanWorld hw(machine::with_numa(
        machine::make_aries(scale.nodes, scale.ppn), domains));
    obs.attach(hw.world, &hw.rt);
    const double t2 = bench::timed(hw, bytes, flat_cfg);
    const double t3 = bench::timed(hw, bytes, derived_cfg);
    rows.push_back({bytes, t2, t3});
    t.begin_row()
        .cell(sim::format_bytes(bytes))
        .cell(t2 * 1e6)
        .cell(t3 * 1e6)
        .cell(bench::speedup(t2, t3), 2);
    std::string suffix = ".";
    suffix += std::to_string(bytes);
    obs.emit(hw.world, suffix);
  }
  t.print("hierarchy-depth ablation (MPI_Bcast)");
  std::printf(
      "\nExpected: the third level wins once the inter-socket link would "
      "otherwise carry every far-socket reader.\n");

  const std::string bench_json = args.get_string("--bench-json", "");
  if (!bench_json.empty()) {
    std::string j = "{\n";
    j += "  \"description\": \"derived 3-level (lvl=0) vs forced flat "
         "2-level (lvl=2) HAN bcast on a NUMA-split aries machine "
         "(docs/HIERARCHY.md)\",\n";
    j += "  \"bench_binary\": \"build/bench/abl_numa\",\n";
    j += "  \"machine\": \"aries " + std::to_string(scale.nodes) + "x" +
         std::to_string(scale.ppn) + " numa=" + std::to_string(domains) +
         "\",\n";
    j += "  \"config\": \"" + flat_cfg.to_string() + "\",\n";
    j += "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      j += "    {\"bytes\": " + std::to_string(r.bytes) +
           ", \"flat_seconds\": " + bench::fmt_double(r.t2) +
           ", \"derived_seconds\": " + bench::fmt_double(r.t3) +
           ", \"speedup\": " + bench::fmt_double(r.t2 / r.t3) + "}" +
           (i + 1 < rows.size() ? ",\n" : "\n");
    }
    j += "  ],\n";
    j += "  \"largest_message_speedup\": " +
         bench::fmt_double(rows.back().t2 / rows.back().t3) + "\n";
    j += "}\n";
    std::FILE* f = std::fopen(bench_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "abl_numa: cannot write %s\n", bench_json.c_str());
      return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("bench json: %s\n", bench_json.c_str());
  }
  return 0;
}
